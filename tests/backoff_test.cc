#include "src/util/backoff.h"

#include <vector>

#include <gtest/gtest.h>

namespace streamhist {
namespace {

TEST(BackoffTest, DefaultScheduleIsTheHistoricalDoubling) {
  // The checkpoint writer's retry loop predates this class; its schedule
  // (1ms, 2ms, 4ms, ... capped at 1s, no jitter) must be reproduced exactly
  // by the defaults or extracting the helper changed behavior.
  Backoff backoff{BackoffOptions{}};
  EXPECT_EQ(backoff.DelayMs(1), 1);
  EXPECT_EQ(backoff.DelayMs(2), 2);
  EXPECT_EQ(backoff.DelayMs(3), 4);
  EXPECT_EQ(backoff.DelayMs(10), 512);
  EXPECT_EQ(backoff.DelayMs(11), 1000);  // cap
  EXPECT_EQ(backoff.DelayMs(60), 1000);  // stays capped, no overflow
}

TEST(BackoffTest, NextDelayAdvancesAndResetRestarts) {
  Backoff backoff{BackoffOptions{}};
  EXPECT_EQ(backoff.attempt(), 0);
  EXPECT_EQ(backoff.NextDelayMs(), 1);
  EXPECT_EQ(backoff.NextDelayMs(), 2);
  EXPECT_EQ(backoff.NextDelayMs(), 4);
  EXPECT_EQ(backoff.attempt(), 3);
  backoff.Reset();
  EXPECT_EQ(backoff.attempt(), 0);
  EXPECT_EQ(backoff.NextDelayMs(), 1);  // schedule restarted
}

TEST(BackoffTest, JitterIsBoundedAndDeterministicPerSeed) {
  BackoffOptions options;
  options.initial_ms = 100;
  options.max_ms = 10000;
  options.jitter = 0.3;
  options.seed = 42;
  Backoff a{options};
  Backoff b{options};
  options.seed = 43;
  Backoff other{options};

  bool seeds_diverged = false;
  for (int64_t attempt = 1; attempt <= 8; ++attempt) {
    const int64_t base = Backoff{BackoffOptions{.initial_ms = 100,
                                                .max_ms = 10000,
                                                .jitter = 0.0}}
                             .DelayMs(attempt);
    const int64_t jittered = a.DelayMs(attempt);
    // Same options => identical schedule, forever.
    EXPECT_EQ(jittered, b.DelayMs(attempt));
    // Jitter stays inside [1 - j, 1 + j) of the capped base (plus rounding).
    EXPECT_GE(jittered, static_cast<int64_t>(0.7 * static_cast<double>(base)) - 1)
        << attempt;
    EXPECT_LE(jittered, static_cast<int64_t>(1.3 * static_cast<double>(base)) + 1)
        << attempt;
    if (jittered != other.DelayMs(attempt)) seeds_diverged = true;
  }
  // A different seed must not reproduce the same schedule — that is the
  // whole point of jitter: replicas reconnecting out of lockstep.
  EXPECT_TRUE(seeds_diverged);
}

TEST(BackoffTest, DegenerateOptionsAreClamped) {
  BackoffOptions options;
  options.initial_ms = -5;   // clamped to 0
  options.max_ms = -10;      // clamped up to initial
  options.multiplier = 0.5;  // clamped to 1.0 (never shrinks)
  Backoff backoff{options};
  EXPECT_EQ(backoff.DelayMs(1), 0);
  EXPECT_EQ(backoff.DelayMs(50), 0);

  options = BackoffOptions{};
  options.initial_ms = 500;
  options.max_ms = 100;  // below initial: raised to it
  Backoff raised{options};
  EXPECT_EQ(raised.DelayMs(1), 500);
  EXPECT_EQ(raised.DelayMs(9), 500);
}

TEST(BackoffTest, SleeperIsInjectable) {
  Backoff backoff{BackoffOptions{}};
  std::vector<int64_t> slept;
  backoff.set_sleeper([&](int64_t ms) { slept.push_back(ms); });
  backoff.SleepNext();
  backoff.SleepNext();
  backoff.SleepNext();
  EXPECT_EQ(slept, (std::vector<int64_t>{1, 2, 4}));
}

}  // namespace
}  // namespace streamhist
