#include "src/core/bucket_cost.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace streamhist {
namespace {

std::vector<double> RandomData(int64_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<double> v;
  for (int64_t i = 0; i < n; ++i) v.push_back(rng.UniformDouble(-20, 20));
  return v;
}

TEST(SseBucketCostTest, ZeroForWidthOneBuckets) {
  const std::vector<double> data{3, 1, 4};
  SseBucketCost cost(data);
  for (int64_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(cost.Cost(i, i + 1), 0.0);
}

TEST(SseBucketCostTest, RepresentativeIsMean) {
  const std::vector<double> data{2, 4, 9};
  SseBucketCost cost(data);
  EXPECT_DOUBLE_EQ(cost.Representative(0, 3), 5.0);
  EXPECT_DOUBLE_EQ(cost.Representative(0, 2), 3.0);
}

TEST(SaeBucketCostTest, CostIsSumOfAbsoluteDeviations) {
  const std::vector<double> data{1, 2, 3, 10};
  SaeBucketCost cost(data);
  // Median of {1,2,3,10} = 2.5; SAE = 1.5 + 0.5 + 0.5 + 7.5 = 10.
  EXPECT_DOUBLE_EQ(cost.Cost(0, 4), 10.0);
  // Odd width: median of {1,2,3} = 2; SAE = 1 + 0 + 1 = 2.
  EXPECT_DOUBLE_EQ(cost.Cost(0, 3), 2.0);
}

TEST(SaeBucketCostTest, MedianMinimizesSae) {
  const std::vector<double> data = RandomData(40, 17);
  SaeBucketCost cost(data);
  const double at_median = cost.Cost(5, 30);
  const double median = cost.Representative(5, 30);
  // Perturbing the representative can only increase the cost.
  for (double shift : {-3.0, -0.5, 0.5, 3.0}) {
    double perturbed = 0.0;
    for (int64_t i = 5; i < 30; ++i) {
      perturbed += std::fabs(data[static_cast<size_t>(i)] - (median + shift));
    }
    EXPECT_GE(perturbed + 1e-9, at_median);
  }
}

TEST(MaxAbsBucketCostTest, MatchesBruteForce) {
  const std::vector<double> data = RandomData(100, 23);
  MaxAbsBucketCost cost(data);
  Random rng(5);
  for (int t = 0; t < 200; ++t) {
    const int64_t i = rng.UniformInt(0, 99);
    const int64_t j = rng.UniformInt(i + 1, 100);
    const double mn = *std::min_element(
        data.begin() + static_cast<ptrdiff_t>(i),
        data.begin() + static_cast<ptrdiff_t>(j));
    const double mx = *std::max_element(
        data.begin() + static_cast<ptrdiff_t>(i),
        data.begin() + static_cast<ptrdiff_t>(j));
    EXPECT_DOUBLE_EQ(cost.Cost(i, j), j - i > 1 ? (mx - mn) / 2.0 : 0.0);
    EXPECT_DOUBLE_EQ(cost.Representative(i, j), (mx + mn) / 2.0);
  }
}

TEST(MaxAbsBucketCostTest, MidrangeMinimizesMaxDeviation) {
  const std::vector<double> data = RandomData(30, 31);
  MaxAbsBucketCost cost(data);
  const double rep = cost.Representative(0, 30);
  const double c = cost.Cost(0, 30);
  for (double v : data) EXPECT_LE(std::fabs(v - rep), c + 1e-12);
}

TEST(BucketCostTest, AllCostsAreMonotoneInRangeInclusion) {
  // Widening a bucket never decreases its cost, for every cost family —
  // the monotonicity property the paper's search-space reduction needs.
  const std::vector<double> data = RandomData(60, 41);
  SseBucketCost sse(data);
  SaeBucketCost sae(data);
  MaxAbsBucketCost maxabs(data);
  for (const BucketCost* cost :
       std::initializer_list<const BucketCost*>{&sse, &sae, &maxabs}) {
    for (int64_t i = 0; i < 50; i += 7) {
      double prev = 0.0;
      for (int64_t j = i + 1; j <= 60; ++j) {
        const double c = cost->Cost(i, j);
        EXPECT_GE(c + 1e-9, prev);
        prev = c;
      }
    }
  }
}

}  // namespace
}  // namespace streamhist
