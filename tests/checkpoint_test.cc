// Engine checkpoint/restore: the round-trip property (a reloaded engine
// answers every query identically), partial recovery from per-section
// corruption, and the SAVE/LOAD query-language verbs.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/engine/query_engine.h"
#include "src/util/fileio.h"

namespace streamhist {
namespace {

/// A unique checkpoint path under the test's scratch directory, removed on
/// destruction so repeated runs do not see stale files.
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

StreamConfig SmallConfig() {
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  config.epsilon = 0.2;
  return config;
}

QueryEngine PopulatedEngine() {
  QueryEngine engine;
  EXPECT_TRUE(engine.CreateStream("eth0", SmallConfig()).ok());
  EXPECT_TRUE(engine.CreateStream("eth1", SmallConfig()).ok());
  const std::vector<double> a = GenerateDataset(DatasetKind::kUtilization, 500, 3);
  const std::vector<double> b = GenerateDataset(DatasetKind::kUtilization, 300, 9);
  EXPECT_TRUE(engine.AppendBatch("eth0", a).ok());
  EXPECT_TRUE(engine.AppendBatch("eth1", b).ok());
  return engine;
}

std::vector<std::string> ProbeStatements(const std::string& stream) {
  return {
      "COUNT " + stream,        "SUM " + stream + " 0 64",
      "SUM " + stream + " 7 41", "AVG " + stream + " LAST 10",
      "SUMBOUND " + stream + " 3 50", "POINT " + stream + " 63",
      "QUANTILE " + stream + " 0.5", "QUANTILE " + stream + " 0.99",
      "DISTINCT " + stream,     "ERROR " + stream,
      "SHOW " + stream,
  };
}

TEST(CheckpointTest, SaveLoadRoundTripAnswersIdentically) {
  TempPath path("roundtrip.ckpt");
  QueryEngine engine = PopulatedEngine();
  ASSERT_TRUE(engine.SaveCheckpoint(path.str()).ok());

  QueryEngine reloaded;
  const auto report = reloaded.LoadCheckpoint(path.str());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->fully_loaded());
  EXPECT_EQ(report->loaded, (std::vector<std::string>{"eth0", "eth1"}));
  EXPECT_EQ(reloaded.ListStreams(), engine.ListStreams());

  for (const std::string stream : {"eth0", "eth1"}) {
    for (const std::string& statement : ProbeStatements(stream)) {
      const auto want = engine.Execute(statement);
      const auto got = reloaded.Execute(statement);
      ASSERT_TRUE(want.ok()) << statement << ": " << want.status();
      ASSERT_TRUE(got.ok()) << statement << ": " << got.status();
      EXPECT_EQ(got.value(), want.value()) << statement;
    }
  }
}

TEST(CheckpointTest, HappyPathSaveTakesOneAttempt) {
  TempPath path("one_attempt.ckpt");
  QueryEngine engine = PopulatedEngine();
  QueryEngine::SaveReport report;
  ASSERT_TRUE(engine.SaveCheckpoint(path.str(), &report).ok());
  EXPECT_EQ(report.attempts, 1);
  // The SAVE verb omits the attempt suffix when no retry happened.
  const auto saved = engine.Execute("SAVE " + path.str());
  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_EQ(saved.value().find("attempts"), std::string::npos);
}

TEST(CheckpointTest, RestoredEngineIngestsIdentically) {
  TempPath path("ingest.ckpt");
  QueryEngine engine = PopulatedEngine();
  ASSERT_TRUE(engine.SaveCheckpoint(path.str()).ok());
  QueryEngine reloaded;
  ASSERT_TRUE(reloaded.LoadCheckpoint(path.str()).ok());

  // Feed both engines the same continuation and compare answers again: a
  // checkpoint must not perturb future state evolution either.
  const std::vector<double> more =
      GenerateDataset(DatasetKind::kRandomWalk, 400, 5);
  ASSERT_TRUE(engine.AppendBatch("eth0", more).ok());
  ASSERT_TRUE(reloaded.AppendBatch("eth0", more).ok());
  for (const std::string& statement : ProbeStatements("eth0")) {
    EXPECT_EQ(reloaded.Execute(statement).value(),
              engine.Execute(statement).value())
        << statement;
  }
}

TEST(CheckpointTest, EmptyEngineRoundTrips) {
  TempPath path("empty.ckpt");
  QueryEngine engine;
  ASSERT_TRUE(engine.SaveCheckpoint(path.str()).ok());
  QueryEngine reloaded;
  ASSERT_TRUE(reloaded.CreateStream("old", SmallConfig()).ok());
  const auto report = reloaded.LoadCheckpoint(path.str());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->loaded.empty());
  // LOAD replaces the registry wholesale.
  EXPECT_TRUE(reloaded.ListStreams().empty());
}

TEST(CheckpointTest, MissingFileFailsAndLeavesEngineUnchanged) {
  QueryEngine engine = PopulatedEngine();
  const auto report = engine.LoadCheckpoint("/nonexistent/dir/x.ckpt");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(engine.ListStreams(),
            (std::vector<std::string>{"eth0", "eth1"}));
}

TEST(CheckpointTest, CorruptHeaderFailsAndLeavesEngineUnchanged) {
  TempPath path("header.ckpt");
  QueryEngine source = PopulatedEngine();
  ASSERT_TRUE(source.SaveCheckpoint(path.str()).ok());

  auto bytes = ReadFileToString(path.str());
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[4] ^= 0x40;  // header frame version field -> header CRC fails
  ASSERT_TRUE(AtomicWriteFile(path.str(), corrupted).ok());

  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("survivor", SmallConfig()).ok());
  EXPECT_FALSE(engine.LoadCheckpoint(path.str()).ok());
  EXPECT_EQ(engine.ListStreams(), (std::vector<std::string>{"survivor"}));
}

TEST(CheckpointTest, CorruptSectionIsDroppedOthersStillLoad) {
  TempPath path("partial.ckpt");
  QueryEngine source = PopulatedEngine();
  ASSERT_TRUE(source.SaveCheckpoint(path.str()).ok());

  auto bytes = ReadFileToString(path.str());
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  // The header frame is 8+20 bytes; eth0's section starts right after it.
  // Flip a payload byte well inside the first section.
  corrupted[60] ^= 0x01;
  ASSERT_TRUE(AtomicWriteFile(path.str(), corrupted).ok());

  QueryEngine engine;
  const auto report = engine.LoadCheckpoint(path.str());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->fully_loaded());
  ASSERT_EQ(report->dropped.size(), 1u);
  EXPECT_FALSE(report->dropped[0].reason.ok());
  EXPECT_EQ(report->loaded, (std::vector<std::string>{"eth1"}));
  // The surviving stream answers queries.
  EXPECT_TRUE(engine.Execute("COUNT eth1").ok());
  EXPECT_FALSE(engine.Execute("COUNT eth0").ok());
}

TEST(CheckpointTest, TruncatedTailDropsOnlyLostSections) {
  TempPath path("tail.ckpt");
  QueryEngine source = PopulatedEngine();
  ASSERT_TRUE(source.SaveCheckpoint(path.str()).ok());

  auto bytes = ReadFileToString(path.str());
  ASSERT_TRUE(bytes.ok());
  // Cut the file mid-way through the second section: eth0 must survive.
  std::string truncated =
      bytes.value().substr(0, bytes.value().size() - 200);
  ASSERT_TRUE(AtomicWriteFile(path.str(), truncated).ok());

  QueryEngine engine;
  const auto report = engine.LoadCheckpoint(path.str());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->loaded, (std::vector<std::string>{"eth0"}));
  EXPECT_EQ(report->dropped.size(), 1u);
}

TEST(CheckpointTest, SaveIsAtomicOldCheckpointSurvivesOverwrite) {
  TempPath path("atomic.ckpt");
  QueryEngine engine = PopulatedEngine();
  ASSERT_TRUE(engine.SaveCheckpoint(path.str()).ok());
  auto first = ReadFileToString(path.str());
  ASSERT_TRUE(first.ok());

  // Saving again over the same path replaces the file completely.
  ASSERT_TRUE(engine.AppendBatch("eth0", std::vector<double>{1, 2, 3}).ok());
  ASSERT_TRUE(engine.SaveCheckpoint(path.str()).ok());
  QueryEngine reloaded;
  ASSERT_TRUE(reloaded.LoadCheckpoint(path.str()).ok());
  EXPECT_EQ(reloaded.Execute("COUNT eth0").value(),
            engine.Execute("COUNT eth0").value());
}

TEST(CheckpointVerbTest, SaveAndLoadThroughQueryLanguage) {
  TempPath path("verbs.ckpt");
  QueryEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
  ASSERT_TRUE(engine.Execute("APPEND eth0 1 2 3 4 5").ok());
  const auto saved = engine.Execute("SAVE " + path.str());
  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_NE(saved.value().find("1 stream(s)"), std::string::npos);

  QueryEngine other;
  const auto loaded = other.Execute("LOAD " + path.str());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_NE(loaded.value().find("eth0"), std::string::npos);
  EXPECT_EQ(other.Execute("COUNT eth0").value(), "5");
  EXPECT_EQ(other.Execute("SUM eth0 LAST 5").value(),
            engine.Execute("SUM eth0 LAST 5").value());
}

TEST(CheckpointVerbTest, CreateAppendDropVerbs) {
  QueryEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE s").ok());
  EXPECT_FALSE(engine.Execute("CREATE s").ok());  // duplicate
  EXPECT_FALSE(engine.Execute("CREATE t 0").ok());  // invalid window
  const auto appended = engine.Execute("APPEND s 1.5 nan 2.5 inf");
  ASSERT_TRUE(appended.ok()) << appended.status();
  EXPECT_NE(appended.value().find("quarantined 2"), std::string::npos);
  EXPECT_EQ(engine.Execute("COUNT s").value(), "2");
  EXPECT_TRUE(engine.Execute("DROP s").ok());
  EXPECT_FALSE(engine.Execute("DROP s").ok());
  EXPECT_FALSE(engine.Execute("SAVE").ok());
  EXPECT_FALSE(engine.Execute("LOAD").ok());
}

TEST(QuarantineTest, NonFiniteValuesNeverReachSynopses) {
  ManagedStream stream = ManagedStream::Create(SmallConfig()).value();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  stream.AppendBatch(std::vector<double>{1.0, nan, 2.0, inf, -inf, 3.0});
  EXPECT_EQ(stream.total_points(), 3);
  EXPECT_EQ(stream.dropped_nonfinite(), 3);
  // The poisoned values must not have reached any synopsis: every answer is
  // still finite. (The window holds only the 3 accepted points.)
  EXPECT_TRUE(std::isfinite(stream.window_histogram().RangeSum(0, 3)));
  EXPECT_TRUE(std::isfinite(stream.quantiles()->Quantile(0.5)));
  EXPECT_NE(stream.Describe().find("3 non-finite dropped"),
            std::string::npos);
}

}  // namespace
}  // namespace streamhist
