#include "src/tools/cli.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/util/random.h"
#include "src/util/wal.h"

namespace streamhist {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunTool(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = RunCli(args, out, err);
  return CliResult{code, out.str(), err.str()};
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    csv_ = dir_ + "/series.csv";
    hist_ = dir_ + "/hist.bin";
  }

  std::string dir_, csv_, hist_;
};

TEST_F(CliTest, UsageOnNoArgs) {
  const CliResult r = RunTool({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownSubcommand) {
  EXPECT_EQ(RunTool({"frobnicate"}).code, 2);
}

TEST_F(CliTest, GenerateBuildQueryInspectPipeline) {
  CliResult r = RunTool({"generate", "--kind", "piecewise", "--n", "500", "--seed",
                     "7", "--out", csv_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote 500 piecewise points"), std::string::npos);

  r = RunTool({"build", "--input", csv_, "--buckets", "16", "--out", hist_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("16 buckets over 500 points"), std::string::npos);

  r = RunTool({"query", "--histogram", hist_, "SUM", "0", "500"});
  ASSERT_EQ(r.code, 0) << r.err;
  const double sum = std::stod(r.out);

  r = RunTool({"query", "--histogram", hist_, "AVG", "0", "500"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NEAR(std::stod(r.out), sum / 500.0, 1e-6);

  r = RunTool({"query", "--histogram", hist_, "POINT", "250"});
  ASSERT_EQ(r.code, 0) << r.err;

  r = RunTool({"inspect", "--histogram", hist_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("16 buckets over domain [0, 500)"), std::string::npos);
}

TEST_F(CliTest, AllBuildAlgorithmsWork) {
  ASSERT_EQ(RunTool({"generate", "--n", "200", "--out", csv_}).code, 0);
  for (const char* algorithm :
       {"vopt", "agglomerative", "greedy", "equiwidth", "maxdiff"}) {
    const CliResult r = RunTool({"build", "--input", csv_, "--buckets", "8",
                             "--algorithm", algorithm, "--out", hist_});
    EXPECT_EQ(r.code, 0) << algorithm << ": " << r.err;
    EXPECT_EQ(RunTool({"inspect", "--histogram", hist_}).code, 0) << algorithm;
  }
  EXPECT_EQ(RunTool({"build", "--input", csv_, "--buckets", "8", "--algorithm",
                 "nonsense", "--out", hist_})
                .code,
            2);
}

TEST_F(CliTest, ErrorPaths) {
  EXPECT_EQ(RunTool({"generate", "--out", csv_}).code, 2);       // missing --n
  EXPECT_EQ(RunTool({"generate", "--n", "-3", "--out", csv_}).code, 2);
  EXPECT_EQ(RunTool({"build", "--input", dir_ + "/missing.csv", "--buckets", "4",
                 "--out", hist_})
                .code,
            1);
  EXPECT_EQ(RunTool({"query", "--histogram", dir_ + "/missing.bin", "SUM", "0",
                 "1"})
                .code,
            1);

  ASSERT_EQ(RunTool({"generate", "--n", "50", "--out", csv_}).code, 0);
  ASSERT_EQ(
      RunTool({"build", "--input", csv_, "--buckets", "4", "--out", hist_}).code,
      0);
  EXPECT_EQ(RunTool({"query", "--histogram", hist_, "SUM", "0", "999"}).code, 1);
  EXPECT_EQ(RunTool({"query", "--histogram", hist_, "POINT", "50"}).code, 1);
  EXPECT_EQ(RunTool({"query", "--histogram", hist_, "MEDIAN", "1"}).code, 2);
}

TEST_F(CliTest, BuildRejectsNonFiniteCsv) {
  std::ofstream f(csv_);
  f << "1.0\nnan\n2.0\n";
  f.close();
  const CliResult r =
      RunTool({"build", "--input", csv_, "--buckets", "2", "--out", hist_});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("non-finite"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find(":2:"), std::string::npos) << r.err;  // line number
}

TEST_F(CliTest, BuildRejectsBucketsBeyondSeriesLength) {
  ASSERT_EQ(RunTool({"generate", "--n", "50", "--out", csv_}).code, 0);
  const CliResult r =
      RunTool({"build", "--input", csv_, "--buckets", "51", "--out", hist_});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("exceeds series length"), std::string::npos) << r.err;
}

TEST_F(CliTest, ConsoleRunsScriptAndCheckpoints) {
  const std::string script = dir_ + "/session.shq";
  const std::string ckpt = dir_ + "/console.ckpt";
  {
    std::ofstream f(script);
    f << "# build a stream, checkpoint it, survive one bad statement\n"
      << "CREATE eth0 64 8\n"
      << "APPEND eth0 1 2 3 4 5\n"
      << "SAVE " << ckpt << "\n"
      << "FROBNICATE eth0\n"
      << "COUNT eth0\n"
      << "exit\n"
      << "DESCRIBE eth0\n";  // after EXIT: must not run
  }
  const CliResult r = RunTool({"console", "--script", script});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("created stream 'eth0'"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("appended 5 point(s)"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("checkpointed 1 stream(s)"), std::string::npos);
  EXPECT_NE(r.err.find("error:"), std::string::npos) << r.err;
  EXPECT_NE(r.out.find("5\n"), std::string::npos);
  EXPECT_EQ(r.out.find("points seen"), std::string::npos);  // EXIT honored

  // A fresh console session recovers the checkpointed stream.
  const std::string script2 = dir_ + "/recover.shq";
  {
    std::ofstream f(script2);
    f << "LOAD " << ckpt << "\nCOUNT eth0\n";
  }
  const CliResult recovered = RunTool({"console", "--script", script2});
  EXPECT_EQ(recovered.code, 0);
  EXPECT_NE(recovered.out.find("loaded 1 stream(s): eth0"), std::string::npos)
      << recovered.out;
  EXPECT_NE(recovered.out.find("5\n"), std::string::npos) << recovered.out;
}

TEST_F(CliTest, ConsoleBuildWithinAndMemoryVerbs) {
  const std::string script = dir_ + "/governor.shq";
  {
    std::ofstream f(script);
    f << "CREATE eth0 64 8\n"
      << "APPEND eth0 1 2 3 4 5 6 7 8 9 10\n"
      << "BUILD eth0 WITHIN 60000\n"   // generous deadline: no degradation
      << "BUILD eth0 WITHIN 0\n"       // invalid: must error, session continues
      << "MEMORY\n"
      << "exit\n";
  }
  const CliResult r = RunTool({"console", "--script", script});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("built exact:"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("degraded"), std::string::npos) << r.out;
  EXPECT_NE(r.err.find("error:"), std::string::npos) << r.err;  // WITHIN 0
  EXPECT_NE(r.out.find("budget="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("used="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("eth0="), std::string::npos) << r.out;
}

TEST_F(CliTest, ServeSingleSessionMatchesConsoleSemantics) {
  const std::string script = dir_ + "/serve1.shq";
  {
    std::ofstream f(script);
    f << "CREATE eth0 64 8\n"
      << "APPEND eth0 1 2 3 4 5\n"
      << "COUNT eth0\n"
      << "FROBNICATE eth0\n"  // errors are per-statement, session continues
      << "STATS eth0\n"
      << "exit\n"
      << "DESCRIBE eth0\n";  // after EXIT: must not run
  }
  const CliResult r = RunTool({"serve", "--threads", "1", "--script", script});
  EXPECT_EQ(r.code, 0);
  // Answers print in input order.
  const size_t created = r.out.find("created stream 'eth0'");
  const size_t appended = r.out.find("appended 5 point(s)");
  const size_t counted = r.out.find("5\n");
  ASSERT_NE(created, std::string::npos) << r.out;
  ASSERT_NE(appended, std::string::npos) << r.out;
  ASSERT_NE(counted, std::string::npos) << r.out;
  EXPECT_LT(created, appended);
  EXPECT_LT(appended, counted);
  EXPECT_NE(r.err.find("error:"), std::string::npos) << r.err;
  EXPECT_NE(r.out.find("COUNT count=1"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("points seen"), std::string::npos);  // EXIT honored
  EXPECT_NE(r.out.find("serve: 5 statements on 1 session: 4 ok, 1 errors"),
            std::string::npos)
      << r.out;
}

TEST_F(CliTest, ServeRunsIndependentSessionsConcurrently) {
  const std::string script = dir_ + "/serve4.shq";
  {
    // Statement i runs on session i % 4: each session gets "CREATE sK"
    // then "APPEND sK ..." for its own K, so the racing sessions never
    // touch each other's streams and every statement succeeds.
    std::ofstream f(script);
    for (int k = 0; k < 4; ++k) f << "CREATE s" << k << " 32 4\n";
    for (int k = 0; k < 4; ++k) f << "APPEND s" << k << " 1 2 3\n";
    for (int k = 0; k < 4; ++k) f << "COUNT s" << k << "\n";
  }
  const CliResult r = RunTool({"serve", "--threads", "4", "--script", script});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("serve: 12 statements on 4 sessions: 12 ok, 0 errors"),
            std::string::npos)
      << r.out << r.err;
  for (int k = 0; k < 4; ++k) {
    EXPECT_NE(r.out.find("created stream 's" + std::to_string(k) + "'"),
              std::string::npos)
        << r.out;
  }
}

TEST_F(CliTest, ServeSessionDeadlineCancelsStatements) {
  const std::string script = dir_ + "/serve_deadline.shq";
  {
    std::ofstream f(script);
    f << "CREATE eth0 64 8\nCOUNT eth0\n";
  }
  // A generous session deadline leaves every statement running normally.
  const CliResult r = RunTool({"serve", "--threads", "1", "--deadline-ms",
                               "60000", "--script", script});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("serve: 2 statements on 1 session: 2 ok"),
            std::string::npos)
      << r.out;

  // --deadline-ms 0: the session context is born expired, so every
  // statement is refused with a cancellation error.
  const CliResult expired = RunTool({"serve", "--threads", "1",
                                     "--deadline-ms", "0", "--script",
                                     script});
  EXPECT_EQ(expired.code, 0);
  EXPECT_NE(expired.out.find("0 ok, 2 errors"), std::string::npos)
      << expired.out;
  EXPECT_NE(expired.err.find("error:"), std::string::npos) << expired.err;
}

TEST_F(CliTest, ServeRejectsBadThreadCounts) {
  EXPECT_EQ(RunTool({"serve", "--threads", "0"}).code, 2);
  EXPECT_EQ(RunTool({"serve", "--threads", "65"}).code, 2);
  const CliResult r = RunTool({"serve", "--threads", "4", "--script",
                               dir_ + "/nope.shq"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open script"), std::string::npos);
}

TEST_F(CliTest, WalVerifyExitCodesSeparateTornTailFromInteriorRot) {
  // `wal verify` is an ops probe (README runbook): 0 = clean, 3 = torn tail
  // only (normal crash residue — recovery truncates it), 1 = interior
  // corruption (fsynced bytes rotted — page the operator). The advisory 3
  // must never mask real rot.
  const std::string wal_dir = dir_ + "/wal_verify";
  std::filesystem::remove_all(wal_dir);
  {
    wal::Options options;
    options.policy = wal::SyncPolicy::kNone;
    auto opened = wal::Wal::Open(wal_dir, options, nullptr);
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(opened.value()->Append("payload-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(opened.value()->Flush().ok());
  }
  std::string segment;
  for (const auto& entry : std::filesystem::directory_iterator(wal_dir)) {
    if (entry.path().extension() == ".seg") segment = entry.path().string();
  }
  ASSERT_FALSE(segment.empty());

  CliResult r = RunTool({"wal", "verify", "--dir", wal_dir});
  EXPECT_EQ(r.code, 0) << r.out << r.err;

  // A half-written frame head at the tail: crash residue, advisory exit 3.
  {
    std::ofstream torn(segment, std::ios::binary | std::ios::app);
    torn.write("\x52\x57\x48\x53\x01\x00\x00", 7);
  }
  r = RunTool({"wal", "verify", "--dir", wal_dir});
  EXPECT_EQ(r.code, 3) << r.out << r.err;

  // Flip one byte inside the FIRST record's payload: interior corruption
  // now coexists with the torn tail, and the hard exit 1 must win.
  {
    std::fstream f(segment,
                   std::ios::binary | std::ios::in | std::ios::out);
    std::string bytes((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
    const size_t pos = bytes.find("payload-0");
    ASSERT_NE(pos, std::string::npos);
    f.seekp(static_cast<std::streamoff>(pos));
    const char flipped = static_cast<char>(bytes[pos] ^ 0x01);
    f.write(&flipped, 1);
  }
  r = RunTool({"wal", "verify", "--dir", wal_dir});
  EXPECT_EQ(r.code, 1) << r.out << r.err;
}

TEST_F(CliTest, ConsoleMissingScriptFileFails) {
  const CliResult r = RunTool({"console", "--script", dir_ + "/nope.shq"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open script"), std::string::npos);
}

// Engine parser fuzz: arbitrary statements must never crash, only return
// errors or answers.
TEST(EngineFuzzTest, RandomStatementsNeverCrash) {
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 32;
  config.num_buckets = 4;
  ASSERT_TRUE(engine.CreateStream("s", config).ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(engine.Append("s", static_cast<double>(i)).ok());
  }

  Random rng(99);
  const std::vector<std::string> vocab{
      "SUM",  "AVG",   "POINT", "QUANTILE", "DISTINCT", "COUNT", "ERROR",
      "SHOW", "LIST",  "s",     "missing",  "LAST",     "0",     "10",
      "32",   "-5",    "1e308", "abc",      "0.5",      "--",    "",
      "9999999999999999999",    "SUMBOUND", "AVGBOUND",
      "CREATE", "APPEND", "DROP", "nan",    "inf"};
  for (int trial = 0; trial < 2000; ++trial) {
    std::string statement;
    const int64_t tokens = rng.UniformInt(0, 5);
    for (int64_t t = 0; t < tokens; ++t) {
      statement += vocab[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(vocab.size()) - 1))];
      statement += ' ';
    }
    const auto result = engine.Execute(statement);
    (void)result;  // ok or error — just must not crash
  }
}

}  // namespace
}  // namespace streamhist
