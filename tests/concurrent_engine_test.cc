// Concurrency stress suite for the engine's snapshot-isolated core: many
// lock-free readers racing writers, DROP/CREATE churn, checkpointing, and
// cancellation — the invariants the PR5 refactor guarantees. Sized to run
// under ThreadSanitizer in CI (the gating tsan job), so iteration counts
// favor interleaving diversity over raw volume. Schedules are seeded: every
// thread derives its verb choices from a fixed per-thread seed.

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/util/deadline.h"

namespace streamhist {
namespace {

StreamConfig SmallConfig(int64_t window = 64, int64_t buckets = 8) {
  StreamConfig config;
  config.window_size = window;
  config.num_buckets = buckets;
  return config;
}

// ---------------------------------------------------------------------------
// Snapshot isolation: no torn reads.
//
// The writer only ever publishes windows that are entirely one constant
// value (round r fills the whole window with r), so every *legal* snapshot
// has: all bucket values equal, zero maintained error, and RangeSum(0, n) ==
// value * n. A reader that ever observed a mix of two rounds — a torn read —
// would see unequal buckets or a sum off the value*n lattice.
TEST(ConcurrentEngineTest, SnapshotIsolationNoTornReads) {
  constexpr int64_t kWindow = 64;
  constexpr int kRounds = 120;
  constexpr int kReaders = 4;

  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig(kWindow, 8)).ok());
  // Round 0: fill the window so readers always see a full, constant window.
  const std::vector<double> zeros(kWindow, 0.0);
  ASSERT_TRUE(engine.AppendBatch("s", zeros).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> violations{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&engine, &stop, &violations] {
      auto handle_or = engine.Stream("s");
      ASSERT_TRUE(handle_or.ok());
      const StreamHandle handle = *handle_or;
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::shared_ptr<const QuerySnapshot> snap = handle.snapshot();
        // Versions only move forward for any single reader.
        if (snap->version < last_version) ++violations;
        last_version = snap->version;
        if (snap->window_size != kWindow) ++violations;
        // All-equal buckets: the window is constant in every published
        // version.
        const double v0 = snap->histogram().Estimate(0);
        for (int64_t i = 1; i < snap->window_size; ++i) {
          if (snap->histogram().Estimate(i) != v0) {
            ++violations;
            break;
          }
        }
        if (snap->histogram().RangeSum(0, kWindow) !=
            v0 * static_cast<double>(kWindow)) {
          ++violations;
        }
        if (snap->approx_error() != 0.0) ++violations;
      }
    });
  }

  for (int r = 1; r <= kRounds; ++r) {
    const std::vector<double> round(kWindow, static_cast<double>(r));
    ASSERT_TRUE(engine.AppendBatch("s", round).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

// A query that acquired its snapshot before a republish keeps answering
// from the old version in full — republishing never mutates a published
// snapshot in place.
TEST(ConcurrentEngineTest, SnapshotAcquiredBeforeRepublishIsImmutable) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig(8, 4)).ok());
  ASSERT_TRUE(
      engine.AppendBatch("s", std::vector<double>{1, 1, 1, 1, 1, 1, 1, 1})
          .ok());

  const StreamHandle handle = engine.Stream("s").value();
  const std::shared_ptr<const QuerySnapshot> before = handle.snapshot();
  const uint64_t before_version = before->version;
  const int64_t before_points = before->total_points;
  const double before_sum = before->histogram().RangeSum(0, 8);

  ASSERT_TRUE(
      engine.AppendBatch("s", std::vector<double>{9, 9, 9, 9, 9, 9, 9, 9})
          .ok());

  const std::shared_ptr<const QuerySnapshot> after = handle.snapshot();
  EXPECT_GT(after->version, before_version);
  EXPECT_EQ(after->total_points, 16);
  EXPECT_EQ(after->histogram().RangeSum(0, 8), 72.0);
  // The old snapshot still answers exactly as it did when acquired.
  EXPECT_EQ(before->version, before_version);
  EXPECT_EQ(before->total_points, before_points);
  EXPECT_EQ(before->histogram().RangeSum(0, 8), before_sum);
  EXPECT_EQ(before_sum, 8.0);
}

// Under a coalescing publication policy (DESIGN.md §13), a held stale
// snapshot stays byte-for-byte immutable while thousands of acked-but-
// unpublished appends accumulate behind it — and the eventual flush
// publishes the whole backlog in one new version.
TEST(ConcurrentEngineTest, HeldSnapshotImmutableAcrossCoalescedAppends) {
  constexpr int64_t kWindow = 64;
  constexpr int kCoalesced = 10'000;

  QueryEngine engine;
  StreamConfig config = SmallConfig(kWindow, 8);
  config.publish_staleness_ms = 60'000;  // coalesce far past the test
  ASSERT_TRUE(engine.CreateStream("s", config).ok());
  ASSERT_TRUE(engine.Execute("FLUSH s").ok());
  const std::vector<double> fill(kWindow, 1.0);
  ASSERT_TRUE(engine.AppendBatch("s", fill).ok());
  ASSERT_TRUE(engine.Execute("FLUSH s").ok());

  const StreamHandle handle = engine.Stream("s").value();
  const std::shared_ptr<const QuerySnapshot> held = handle.snapshot();
  const uint64_t held_version = held->version;
  ASSERT_EQ(held->total_points, kWindow);
  ASSERT_EQ(held->histogram().RangeSum(0, kWindow), 64.0);

  // 10k acked appends, every one coalesced: the published version must not
  // move, and the held snapshot must not change underneath its reader.
  for (int i = 0; i < kCoalesced; ++i) {
    ASSERT_TRUE(engine.Append("s", 2.0).ok());
  }
  EXPECT_EQ(handle.snapshot()->version, held_version);
  EXPECT_EQ(handle.snapshot()->total_points, kWindow);
  EXPECT_EQ(held->version, held_version);
  EXPECT_EQ(held->total_points, kWindow);
  EXPECT_EQ(held->histogram().RangeSum(0, kWindow), 64.0);
  EXPECT_EQ(held->approx_error(), 0.0);

  // The explicit flush publishes the entire backlog as one new version.
  EXPECT_EQ(engine.Execute("FLUSH s").value(), "flushed 1 stream(s)");
  const std::shared_ptr<const QuerySnapshot> fresh = handle.snapshot();
  EXPECT_GT(fresh->version, held_version);
  EXPECT_EQ(fresh->total_points, kWindow + kCoalesced);
  EXPECT_EQ(fresh->histogram().RangeSum(0, kWindow),
            2.0 * static_cast<double>(kWindow));
  // And the held snapshot is still exactly what its reader acquired.
  EXPECT_EQ(held->version, held_version);
  EXPECT_EQ(held->total_points, kWindow);
  EXPECT_EQ(held->histogram().RangeSum(0, kWindow), 64.0);
}

// ---------------------------------------------------------------------------
// Drain-on-drop: a handle (and its snapshots) outlives DROP.
TEST(ConcurrentEngineTest, HandleKeepsDroppedStreamAlive) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig()).ok());
  ASSERT_TRUE(engine.AppendBatch("s", std::vector<double>{1, 2, 3}).ok());

  const StreamHandle handle = engine.Stream("s").value();
  ASSERT_TRUE(engine.DropStream("s").ok());
  EXPECT_FALSE(engine.Stream("s").ok());  // new lookups miss

  // The drained-but-held stream still answers coherently.
  const std::shared_ptr<const QuerySnapshot> snap = handle.snapshot();
  EXPECT_EQ(snap->total_points, 3);
  EXPECT_EQ(snap->histogram().RangeSum(0, 3), 6.0);
  EXPECT_EQ(handle.stream().total_points(), 3);
}

// ---------------------------------------------------------------------------
// Readers x writers x DROP/CREATE churn, seeded schedules: everything may
// race everything; the only acceptable outcomes are success or the small
// set of benign errors (NotFound while the name is unregistered, OutOfRange
// while a fresh window is empty, FailedPrecondition on an empty GK summary,
// and AlreadyExists lost to a racing CREATE).
TEST(ConcurrentEngineTest, ReadersWritersChurnStress) {
  constexpr int kReaders = 3;
  constexpr int kWriters = 2;
  constexpr int kIterations = 400;

  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("hot", SmallConfig(32, 4)).ok());
  ASSERT_TRUE(engine.CreateStream("cold", SmallConfig(32, 4)).ok());
  const std::vector<double> warmup(32, 1.0);
  ASSERT_TRUE(engine.AppendBatch("cold", warmup).ok());

  std::atomic<int64_t> violations{0};
  auto acceptable = [](const Status& status) {
    return status.ok() || status.code() == StatusCode::kNotFound ||
           status.code() == StatusCode::kOutOfRange ||
           status.code() == StatusCode::kFailedPrecondition ||
           status.code() == StatusCode::kInvalidArgument;
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&engine, &violations, &acceptable, t] {
      std::mt19937 rng(1000 + static_cast<unsigned>(t));
      const std::vector<std::string> statements = {
          "SUM hot 0 8",    "COUNT hot",  "DESCRIBE hot", "SHOW hot",
          "SUMBOUND hot LAST 4", "ERROR hot",  "DISTINCT hot", "QUANTILE hot 0.5",
          "SUM cold 0 8",   "COUNT cold", "STATS hot",    "LIST",
      };
      for (int i = 0; i < kIterations; ++i) {
        const auto& statement =
            statements[rng() % statements.size()];
        const Result<std::string> result = engine.Execute(statement);
        if (!result.ok() && !acceptable(result.status())) ++violations;
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&engine, &violations, &acceptable, t] {
      std::mt19937 rng(2000 + static_cast<unsigned>(t));
      for (int i = 0; i < kIterations; ++i) {
        const double v = static_cast<double>(rng() % 100);
        const Result<std::string> result =
            engine.Execute("APPEND hot " + std::to_string(v));
        if (!result.ok() && !acceptable(result.status())) ++violations;
      }
    });
  }
  // Churner: repeatedly unregisters and re-registers "hot" while everyone
  // else is querying or appending to it.
  threads.emplace_back([&engine, &violations, &acceptable] {
    for (int i = 0; i < kIterations / 4; ++i) {
      const Result<std::string> dropped = engine.Execute("DROP hot");
      if (!dropped.ok() && !acceptable(dropped.status())) ++violations;
      const Result<std::string> created = engine.Execute("CREATE hot 32 4");
      if (!created.ok() && !acceptable(created.status())) ++violations;
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);

  // The untouched stream survived the churn with its data intact.
  EXPECT_EQ(engine.Execute("COUNT cold").value(), "32");
}

// Racing CREATEs of one name: exactly one wins.
TEST(ConcurrentEngineTest, ConcurrentCreateHasExactlyOneWinner) {
  QueryEngine engine;
  constexpr int kThreads = 4;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &winners] {
      if (engine.Execute("CREATE dup 32 4").ok()) ++winners;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(engine.ListStreams(), std::vector<std::string>{"dup"});
}

// ---------------------------------------------------------------------------
// SAVE racing APPEND: every checkpoint written mid-traffic is loadable, and
// the restored stream is a coherent point-in-time image.
TEST(ConcurrentEngineTest, CheckpointUnderConcurrentAppendsIsLoadable) {
  const std::string path = ::testing::TempDir() + "/concurrent.ckpt";
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig(32, 4)).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&engine, &stop] {
    double v = 0.0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(engine.Append("s", v).ok());
      v += 1.0;
    }
  });
  std::thread reader([&engine, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(engine.Execute("COUNT s").ok());
    }
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.SaveCheckpoint(path).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  reader.join();

  QueryEngine recovered;
  const auto report = recovered.LoadCheckpoint(path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->fully_loaded());
  const StreamHandle handle = recovered.Stream("s").value();
  // The restored image is internally coherent: the snapshot agrees with the
  // live synopses it was rebuilt from.
  const std::shared_ptr<const QuerySnapshot> snap = handle.snapshot();
  EXPECT_EQ(snap->total_points, handle.stream().total_points());
  EXPECT_GE(snap->total_points, 0);
}

// LOAD replaces the registry while readers hold handles into the old one;
// the old handles keep answering from the pre-LOAD world.
TEST(ConcurrentEngineTest, LoadSwapsRegistryUnderLiveHandles) {
  const std::string path = ::testing::TempDir() + "/swap.ckpt";
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig(8, 4)).ok());
  ASSERT_TRUE(engine.AppendBatch("s", std::vector<double>{5, 5, 5}).ok());
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());

  ASSERT_TRUE(engine.AppendBatch("s", std::vector<double>{7, 7}).ok());
  const StreamHandle old_handle = engine.Stream("s").value();
  EXPECT_EQ(old_handle.snapshot()->total_points, 5);

  ASSERT_TRUE(engine.LoadCheckpoint(path).ok());  // back to 3 points
  const StreamHandle new_handle = engine.Stream("s").value();
  EXPECT_EQ(new_handle.snapshot()->total_points, 3);
  // The pre-LOAD handle still sees the pre-LOAD stream, coherently.
  EXPECT_EQ(old_handle.snapshot()->total_points, 5);
}

// ---------------------------------------------------------------------------
// Stats counters are exact under concurrency (relaxed atomics lose nothing).
TEST(ConcurrentEngineTest, StatsCountersAreExactUnderConcurrency) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;

  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig(16, 4)).ok());
  ASSERT_TRUE(engine.AppendBatch("s", std::vector<double>(16, 1.0)).ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(engine.Execute("SUM s 0 16").ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const StreamHandle handle = engine.Stream("s").value();
  const VerbCounters sums = handle.stats().Read(QueryVerb::kSum);
  EXPECT_EQ(sums.count, kThreads * kPerThread);
  EXPECT_EQ(sums.errors, 0);
  int64_t bucket_total = 0;
  for (int64_t hits : sums.latency) bucket_total += hits;
  EXPECT_EQ(bucket_total, sums.count);
}

// ---------------------------------------------------------------------------
// Per-session ExecContext: cancellation and deadlines.
TEST(ConcurrentEngineTest, CancelledContextRefusesStatements) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig()).ok());
  ExecContext ctx;
  EXPECT_TRUE(engine.Execute("COUNT s", ctx).ok());
  ctx.Cancel();
  const Result<std::string> refused = engine.Execute("COUNT s", ctx);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled);
  // The no-context overload on the same engine is unaffected.
  EXPECT_TRUE(engine.Execute("COUNT s").ok());
}

TEST(ConcurrentEngineTest, ExpiredSessionDeadlineRefusesStatements) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig()).ok());
  ExecContext ctx(Deadline::AfterMillis(0));  // born expired
  const Result<std::string> refused = engine.Execute("COUNT s", ctx);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled);
}

TEST(ConcurrentEngineTest, SessionDeadlineFeedsBuildLadder) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig(64, 8)).ok());
  ASSERT_TRUE(engine.AppendBatch("s", std::vector<double>(64, 2.0)).ok());
  // A generous session deadline: BUILD inherits it and completes its first
  // (exact) rung without degradation.
  ExecContext ctx(Deadline::AfterMillis(60000));
  const Result<std::string> built = engine.Execute("BUILD s", ctx);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_NE(built->find("built exact"), std::string::npos) << *built;
  EXPECT_EQ(built->find("degraded"), std::string::npos) << *built;
}

// Each concurrent session has its own context: cancelling one does not
// disturb the others.
TEST(ConcurrentEngineTest, PerSessionCancellationIsIndependent) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig(16, 4)).ok());
  ASSERT_TRUE(engine.AppendBatch("s", std::vector<double>(16, 1.0)).ok());

  ExecContext cancelled;
  cancelled.Cancel();
  std::atomic<int64_t> violations{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&engine, &cancelled, &violations] {
    for (int i = 0; i < 200; ++i) {
      if (engine.Execute("SUM s 0 16", cancelled).ok()) ++violations;
    }
  });
  threads.emplace_back([&engine, &violations] {
    ExecContext live;
    for (int i = 0; i < 200; ++i) {
      if (!engine.Execute("SUM s 0 16", live).ok()) ++violations;
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace streamhist
