#include "src/engine/query_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/query/estimator.h"
#include "src/util/fault.h"
#include "src/util/governor.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

StreamConfig SmallConfig() {
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  config.epsilon = 0.2;
  return config;
}

TEST(ManagedStreamTest, MaintainsAllSynopses) {
  ManagedStream stream = ManagedStream::Create(SmallConfig()).value();
  Random rng(1);
  for (int i = 0; i < 500; ++i) stream.Append(rng.UniformInt(0, 100));
  EXPECT_EQ(stream.total_points(), 500);
  EXPECT_EQ(stream.window_histogram().window().size(), 64);
  ASSERT_NE(stream.lifetime_histogram(), nullptr);
  EXPECT_EQ(stream.lifetime_histogram()->size(), 500);
  ASSERT_NE(stream.quantiles(), nullptr);
  EXPECT_EQ(stream.quantiles()->size(), 500);
  ASSERT_NE(stream.distinct(), nullptr);
  EXPECT_NEAR(stream.distinct()->EstimateDistinct(), 101.0, 60.0);
  EXPECT_FALSE(stream.Describe().empty());
}

TEST(ManagedStreamTest, OptionalSynopsesCanBeDisabled) {
  StreamConfig config = SmallConfig();
  config.keep_lifetime_histogram = false;
  config.keep_quantiles = false;
  config.keep_distinct = false;
  ManagedStream stream = ManagedStream::Create(config).value();
  stream.Append(1.0);
  EXPECT_EQ(stream.lifetime_histogram(), nullptr);
  EXPECT_EQ(stream.quantiles(), nullptr);
  EXPECT_EQ(stream.distinct(), nullptr);
}

TEST(ManagedStreamTest, CreateValidatesConfig) {
  StreamConfig bad = SmallConfig();
  bad.window_size = 0;
  EXPECT_FALSE(ManagedStream::Create(bad).ok());
  bad = SmallConfig();
  bad.quantile_epsilon = 2.0;
  EXPECT_FALSE(ManagedStream::Create(bad).ok());
  bad = SmallConfig();
  bad.build_delta = -0.5;
  EXPECT_FALSE(ManagedStream::Create(bad).ok());
  bad = SmallConfig();
  bad.build_delta = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ManagedStream::Create(bad).ok());
}

TEST(ManagedStreamTest, BuildWindowHistogramExactAndApprox) {
  ManagedStream stream = ManagedStream::Create(SmallConfig()).value();
  Random rng(9);
  for (int i = 0; i < 300; ++i) stream.Append(rng.UniformDouble(0, 100));
  const std::vector<double> window =
      stream.window_histogram().window().ToVector();
  ASSERT_EQ(window.size(), 64u);

  // Default mode: the exact DP over the current window contents.
  const WindowBuildReport exact = stream.BuildWindowHistogram();
  EXPECT_EQ(exact.mode, WindowBuildMode::kExact);
  EXPECT_EQ(exact.points, 64);
  EXPECT_EQ(exact.bound_factor, 1.0);
  const OptimalHistogramResult reference = BuildVOptimalHistogram(window, 8);
  EXPECT_EQ(exact.sse, reference.error);
  EXPECT_EQ(exact.histogram.ToString(), reference.histogram.ToString());

  // Approximate mode: sandwiched between OPT and the certified factor.
  ASSERT_TRUE(stream.SetBuildMode(WindowBuildMode::kApprox, 0.1).ok());
  const WindowBuildReport approx = stream.BuildWindowHistogram();
  EXPECT_EQ(approx.mode, WindowBuildMode::kApprox);
  EXPECT_EQ(approx.delta, 0.1);
  EXPECT_GE(approx.sse, reference.error * (1.0 - 1e-9));
  EXPECT_LE(approx.sse,
            approx.bound_factor * reference.error * (1.0 + 1e-9) + 1e-9);

  // Invalid deltas are rejected without changing the mode.
  EXPECT_FALSE(stream.SetBuildMode(WindowBuildMode::kApprox, -1.0).ok());
  EXPECT_FALSE(
      stream
          .SetBuildMode(WindowBuildMode::kApprox,
                        std::numeric_limits<double>::quiet_NaN())
          .ok());
  EXPECT_EQ(stream.config().build_mode, WindowBuildMode::kApprox);
  EXPECT_EQ(stream.config().build_delta, 0.1);
}

// Own engine (no fixture): the verb test drives its own stream contents.
TEST(QueryEngineBuildTest, BuildVerb) {
  QueryEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE s 64 8").ok());
  Random rng(4);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine.Append("s", rng.UniformDouble(0, 50)).ok());
  }

  // Default build is exact.
  auto built = engine.Execute("BUILD s");
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_TRUE(built->starts_with("built exact:")) << *built;
  EXPECT_NE(built->find("n=64"), std::string::npos) << *built;

  // ERROR <delta> switches the stream to the approximate DP — sticky, so
  // DESCRIBE and a later plain BUILD reflect it.
  built = engine.Execute("BUILD s ERROR 0.2");
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_TRUE(built->starts_with("built approx(delta=0.2)")) << *built;
  EXPECT_NE(built->find("certified sse <="), std::string::npos) << *built;
  EXPECT_NE(engine.Execute("DESCRIBE s").value().find("build=approx"),
            std::string::npos);
  EXPECT_TRUE(engine.Execute("BUILD s").value().starts_with("built approx"));

  // EXACT switches back.
  EXPECT_TRUE(engine.Execute("BUILD s EXACT").value().starts_with("built exact"));
  EXPECT_NE(engine.Execute("DESCRIBE s").value().find("build=exact"),
            std::string::npos);

  // Malformed forms are rejected.
  EXPECT_FALSE(engine.Execute("BUILD s ERROR").ok());
  EXPECT_FALSE(engine.Execute("BUILD s ERROR -0.5").ok());
  EXPECT_FALSE(engine.Execute("BUILD s ERROR nope").ok());
  EXPECT_FALSE(engine.Execute("BUILD s APPROX 0.1").ok());
  EXPECT_FALSE(engine.Execute("BUILD missing").ok());

  // An empty stream builds an empty histogram rather than failing.
  ASSERT_TRUE(engine.Execute("CREATE empty 16 4").ok());
  built = engine.Execute("BUILD empty");
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_NE(built->find("n=0"), std::string::npos) << *built;
}

// Error paths around the WITHIN clause and the streams a BUILD can target:
// every malformed form returns a Status — never a crash — and valid forms
// compose with the sticky mode arguments.
TEST(QueryEngineBuildTest, BuildWithinAndErrorPaths) {
  QueryEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE s 64 8").ok());
  Random rng(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Append("s", rng.UniformDouble(0, 50)).ok());
  }

  // A generous WITHIN budget behaves exactly like no deadline.
  auto built = engine.Execute("BUILD s WITHIN 60000");
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_TRUE(built->starts_with("built exact:")) << *built;
  EXPECT_EQ(built->find("degraded"), std::string::npos) << *built;

  // WITHIN composes with the sticky mode forms.
  built = engine.Execute("BUILD s ERROR 0.2 WITHIN 60000");
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_TRUE(built->starts_with("built approx(delta=0.2)")) << *built;
  built = engine.Execute("BUILD s EXACT WITHIN 60000");
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_TRUE(built->starts_with("built exact:")) << *built;

  // Zero, negative, and non-numeric budgets are rejected cleanly.
  EXPECT_FALSE(engine.Execute("BUILD s WITHIN 0").ok());
  EXPECT_FALSE(engine.Execute("BUILD s WITHIN -5").ok());
  EXPECT_FALSE(engine.Execute("BUILD s WITHIN soon").ok());
  EXPECT_FALSE(engine.Execute("BUILD s EXACT WITHIN 0").ok());
  EXPECT_FALSE(engine.Execute("BUILD s ERROR 0.1 WITHIN -1").ok());
  // WITHIN with no budget token falls through to the usage error.
  EXPECT_FALSE(engine.Execute("BUILD s WITHIN").ok());

  // BUILD on a dropped stream is NotFound, not a crash.
  ASSERT_TRUE(engine.Execute("DROP s").ok());
  const auto gone = engine.Execute("BUILD s");
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(engine.Execute("BUILD s WITHIN 100").ok());

  // An expired deadline on a real build still succeeds via the ladder.
  ASSERT_TRUE(engine.Execute("CREATE t 64 8").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Append("t", rng.UniformDouble(0, 50)).ok());
  }
  fault::ScopedFault expire("deadline.expire");
  built = engine.Execute("BUILD t WITHIN 60000");
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_TRUE(built->starts_with("built snapshot(eps=")) << *built;
  EXPECT_NE(built->find("certified sse <="), std::string::npos) << *built;
  EXPECT_NE(built->find("degraded:"), std::string::npos) << *built;
}

TEST(QueryEngineMemoryTest, MemoryVerbReportsGovernorAndStreams) {
  QueryEngine engine;
  auto memory = engine.Execute("MEMORY");
  ASSERT_TRUE(memory.ok()) << memory.status();
  EXPECT_NE(memory->find("budget="), std::string::npos) << *memory;
  EXPECT_NE(memory->find("used="), std::string::npos) << *memory;
  EXPECT_NE(memory->find("peak="), std::string::npos) << *memory;

  ASSERT_TRUE(engine.Execute("CREATE m 64 8").ok());
  memory = engine.Execute("MEMORY");
  ASSERT_TRUE(memory.ok()) << memory.status();
  EXPECT_NE(memory->find("; m="), std::string::npos) << *memory;

  EXPECT_FALSE(engine.Execute("MEMORY now").ok());
}

TEST(QueryEngineMemoryTest, CreateIsRefusedOverBudget) {
  governor::SetBudgetForTest(governor::Used() + 1024);  // far below any stream
  QueryEngine engine;
  const Status refused = engine.CreateStream("big", SmallConfig());
  governor::SetBudgetForTest(0);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.message().find("memory budget"), std::string::npos);
  EXPECT_TRUE(engine.ListStreams().empty());

  // With the budget lifted the same CREATE succeeds.
  EXPECT_TRUE(engine.CreateStream("big", SmallConfig()).ok());
}

TEST(QueryEngineMemoryTest, OomFaultRefusesCreateVerb) {
  QueryEngine engine;
  {
    fault::ScopedFault oom("governor.oom");
    const auto refused = engine.Execute("CREATE s 64 8");
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_TRUE(engine.Execute("CREATE s 64 8").ok());
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.CreateStream("eth0", SmallConfig()).ok());
    // Deterministic contents: window ends holding 436..499.
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(engine_.Append("eth0", static_cast<double>(i)).ok());
    }
  }

  QueryEngine engine_;
};

TEST_F(QueryEngineTest, StreamLifecycle) {
  EXPECT_FALSE(engine_.CreateStream("eth0", SmallConfig()).ok());  // dup
  EXPECT_TRUE(engine_.CreateStream("eth1", SmallConfig()).ok());
  EXPECT_EQ(engine_.ListStreams(),
            (std::vector<std::string>{"eth0", "eth1"}));
  EXPECT_TRUE(engine_.DropStream("eth1").ok());
  EXPECT_FALSE(engine_.DropStream("eth1").ok());
  EXPECT_FALSE(engine_.Append("missing", 1.0).ok());
}

TEST_F(QueryEngineTest, CountAndList) {
  EXPECT_EQ(engine_.Execute("COUNT eth0").value(), "500");
  EXPECT_EQ(engine_.Execute("LIST").value(), "eth0");
}

TEST_F(QueryEngineTest, SumOverWindowIsNearExact) {
  // Window holds 436..499: sum = (436+499)*64/2 = 29920.
  const double sum = std::stod(engine_.Execute("SUM eth0 0 64").value());
  EXPECT_NEAR(sum, 29920.0, 0.02 * 29920.0);
}

TEST_F(QueryEngineTest, SumLastKEqualsTailRange) {
  const double last = std::stod(engine_.Execute("SUM eth0 LAST 10").value());
  const double tail = std::stod(engine_.Execute("SUM eth0 54 64").value());
  EXPECT_DOUBLE_EQ(last, tail);
}

TEST_F(QueryEngineTest, AvgIsSumOverWidth) {
  const double sum = std::stod(engine_.Execute("SUM eth0 0 32").value());
  const double avg = std::stod(engine_.Execute("AVG eth0 0 32").value());
  EXPECT_NEAR(avg, sum / 32.0, 1e-9);
}

TEST_F(QueryEngineTest, PointEstimateTracksData) {
  const double p = std::stod(engine_.Execute("POINT eth0 63").value());
  EXPECT_NEAR(p, 499.0, 10.0);  // bucket mean near the newest value
}

TEST_F(QueryEngineTest, QuantileAnswersFromGK) {
  // Values 0..499 uniform: median ~250.
  const double median =
      std::stod(engine_.Execute("QUANTILE eth0 0.5").value());
  EXPECT_NEAR(median, 250.0, 15.0);
}

TEST_F(QueryEngineTest, DistinctEstimate) {
  const double d = std::stod(engine_.Execute("DISTINCT eth0").value());
  EXPECT_NEAR(d, 500.0, 200.0);
}

TEST_F(QueryEngineTest, ErrorDescribeShow) {
  EXPECT_GE(std::stod(engine_.Execute("ERROR eth0").value()), 0.0);
  EXPECT_NE(engine_.Execute("DESCRIBE eth0").value().find("points seen"),
            std::string::npos);
  EXPECT_NE(engine_.Execute("SHOW eth0").value().find("[0,"),
            std::string::npos);
}

TEST_F(QueryEngineTest, StatsVerbCountsPerStreamExecutions) {
  ASSERT_TRUE(engine_.Execute("SUM eth0 0 10").ok());
  ASSERT_TRUE(engine_.Execute("SUM eth0 0 20").ok());
  ASSERT_TRUE(engine_.Execute("COUNT eth0").ok());
  EXPECT_FALSE(engine_.Execute("SUM eth0 10 5").ok());  // counted as an error

  const std::string stats = engine_.Execute("STATS eth0").value();
  EXPECT_NE(stats.find("SUM count=3 errors=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("COUNT count=1 errors=0"), std::string::npos) << stats;
  // Verbs never executed are not listed.
  EXPECT_EQ(stats.find("QUANTILE"), std::string::npos) << stats;
}

TEST_F(QueryEngineTest, StatsNoArgCoversEngineAndEveryStream) {
  ASSERT_TRUE(engine_.Execute("LIST").ok());
  ASSERT_TRUE(engine_.Execute("COUNT eth0").ok());
  const std::string stats = engine_.Execute("STATS").value();
  EXPECT_NE(stats.find("engine:"), std::string::npos) << stats;
  EXPECT_NE(stats.find("LIST count=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("stream eth0:"), std::string::npos) << stats;
  EXPECT_NE(stats.find("COUNT count=1"), std::string::npos) << stats;
  // The C++ API records engine-scoped counters too.
  EXPECT_EQ(engine_.engine_stats().Read(QueryVerb::kList).count, 1);
}

TEST_F(QueryEngineTest, StatsVerbLatencyHistogramAndErrors) {
  ASSERT_TRUE(engine_.Execute("SUM eth0 0 10").ok());
  // A latency histogram rendered through core/histogram.
  const std::string histogram = engine_.Execute("STATS eth0 SUM").value();
  EXPECT_NE(histogram.find("[0,"), std::string::npos) << histogram;
  // Unused verb: explicit fallback, not an error.
  EXPECT_EQ(engine_.Execute("STATS eth0 QUANTILE").value(),
            "no statistics recorded for 'eth0' QUANTILE");
  EXPECT_EQ(engine_.Execute("STATS eth0").value().find("no statistics"),
            std::string::npos);
  // Bad arguments are errors.
  EXPECT_FALSE(engine_.Execute("STATS eth0 FROBNICATE").ok());
  EXPECT_FALSE(engine_.Execute("STATS nosuch").ok());
  EXPECT_FALSE(engine_.Execute("STATS eth0 SUM extra").ok());
}

TEST_F(QueryEngineTest, ParserErrors) {
  EXPECT_FALSE(engine_.Execute("").ok());
  EXPECT_FALSE(engine_.Execute("FROBNICATE eth0").ok());
  EXPECT_FALSE(engine_.Execute("SUM").ok());
  EXPECT_FALSE(engine_.Execute("SUM nosuch 0 10").ok());
  EXPECT_FALSE(engine_.Execute("SUM eth0 0").ok());
  EXPECT_FALSE(engine_.Execute("SUM eth0 ten twenty").ok());
  EXPECT_FALSE(engine_.Execute("SUM eth0 10 5").ok());
  EXPECT_FALSE(engine_.Execute("SUM eth0 0 9999").ok());
  EXPECT_FALSE(engine_.Execute("SUM eth0 LAST 0").ok());
  EXPECT_FALSE(engine_.Execute("POINT eth0 64").ok());
  EXPECT_FALSE(engine_.Execute("QUANTILE eth0 1.5").ok());
  EXPECT_FALSE(engine_.Execute("AVG eth0 5 5").ok());
}

TEST_F(QueryEngineTest, SumBoundReturnsCertifiedInterval) {
  const auto result = engine_.Execute("SUMBOUND eth0 10 50");
  ASSERT_TRUE(result.ok()) << result.status();
  // "estimate +- bound"
  const std::string text = result.value();
  const size_t sep = text.find(" +- ");
  ASSERT_NE(sep, std::string::npos) << text;
  const double estimate = std::stod(text.substr(0, sep));
  const double bound = std::stod(text.substr(sep + 4));
  EXPECT_GE(bound, 0.0);
  // Ground truth: window holds 436..499, so sum[10,50) = sum 446..485.
  double truth = 0.0;
  for (int v = 446; v < 486; ++v) truth += v;
  EXPECT_LE(std::fabs(estimate - truth), bound + 1e-6);

  // AVGBOUND is the scaled version.
  const auto avg = engine_.Execute("AVGBOUND eth0 10 50");
  ASSERT_TRUE(avg.ok());
  EXPECT_FALSE(engine_.Execute("SUMBOUND eth0 5 5").ok());
}

TEST_F(QueryEngineTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(engine_.Execute("sum eth0 last 5").ok());
  EXPECT_TRUE(engine_.Execute("Describe eth0").ok());
}

TEST_F(QueryEngineTest, DisabledSynopsesReportFailedPrecondition) {
  StreamConfig config = SmallConfig();
  config.keep_quantiles = false;
  config.keep_distinct = false;
  ASSERT_TRUE(engine_.CreateStream("bare", config).ok());
  ASSERT_TRUE(engine_.Append("bare", 1.0).ok());
  EXPECT_EQ(engine_.Execute("QUANTILE bare 0.5").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine_.Execute("DISTINCT bare").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryEngineAccuracyTest, WindowSumsTrackExactAnswers) {
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 256;
  config.num_buckets = 16;
  config.epsilon = 0.1;
  ASSERT_TRUE(engine.CreateStream("s", config).ok());

  const std::vector<double> stream =
      GenerateDataset(DatasetKind::kUtilization, 4000, 3);
  ASSERT_TRUE(engine.AppendBatch("s", stream).ok());

  const std::vector<double> window(stream.end() - 256, stream.end());
  ExactEstimator exact(window);
  Random rng(9);
  for (int q = 0; q < 50; ++q) {
    const int64_t lo = rng.UniformInt(0, 255);
    const int64_t hi = rng.UniformInt(lo + 1, 256);
    std::ostringstream stmt;
    stmt << "SUM s " << lo << " " << hi;
    const double approx = std::stod(engine.Execute(stmt.str()).value());
    const double truth = exact.RangeSum(lo, hi);
    EXPECT_NEAR(approx, truth, std::max(50.0, 0.1 * std::fabs(truth)));
  }
}

}  // namespace
}  // namespace streamhist
