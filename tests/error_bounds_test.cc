#include "src/core/error_bounds.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/agglomerative.h"
#include "src/core/fixed_window.h"
#include "src/core/heuristics.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/query/workload.h"
#include "src/stream/prefix_sums.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

TEST(ErrorBoundsTest, PerBucketSseSumsToTotalSse) {
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kRandomWalk, 300, 3);
  const Histogram h = BuildVOptimalHistogram(data, 12).histogram;
  const std::vector<double> sse = PerBucketSse(h, data);
  double total = 0.0;
  for (double s : sse) total += s;
  EXPECT_NEAR(total, h.SseAgainst(data), 1e-6);
}

TEST(ErrorBoundsTest, BucketAlignedQueriesHaveZeroBound) {
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, 200, 5);
  const Histogram h = BuildVOptimalHistogram(data, 8).histogram;
  const std::vector<double> sse = PerBucketSse(h, data);
  PrefixSums sums(data);
  for (const Bucket& b : h.buckets()) {
    const BoundedValue r = RangeSumWithBound(h, sse, b.begin, b.end);
    EXPECT_DOUBLE_EQ(r.error_bound, 0.0);
    // And the estimate is exact for bucket-aligned ranges (exact means).
    EXPECT_NEAR(r.estimate, sums.Sum(b.begin, b.end), 1e-6);
  }
  const BoundedValue whole = RangeSumWithBound(h, sse, 0, 200);
  EXPECT_DOUBLE_EQ(whole.error_bound, 0.0);
}

// The headline property: the certified bound always contains the truth,
// across datasets, builders, and random queries.
struct BoundCase {
  const char* dataset;
  int64_t n;
  int64_t buckets;
  uint64_t seed;
};

void PrintTo(const BoundCase& c, std::ostream* os) {
  *os << c.dataset << "/n" << c.n << "/B" << c.buckets << "/s" << c.seed;
}

class CertifiedBoundTest : public ::testing::TestWithParam<BoundCase> {};

TEST_P(CertifiedBoundTest, BoundAlwaysContainsTruth) {
  const BoundCase c = GetParam();
  const std::vector<double> data =
      GenerateDataset(ParseDatasetKind(c.dataset), c.n, c.seed);
  PrefixSums sums(data);
  Random rng(c.seed * 31);

  // Every builder whose bucket values are exact means qualifies.
  std::vector<Histogram> histograms;
  histograms.push_back(BuildVOptimalHistogram(data, c.buckets).histogram);
  histograms.push_back(BuildEquiWidthHistogram(data, c.buckets));
  histograms.push_back(BuildMaxDiffHistogram(data, c.buckets));
  ApproxHistogramOptions options;
  options.num_buckets = c.buckets;
  options.epsilon = 0.2;
  AgglomerativeHistogram agg = AgglomerativeHistogram::Create(options).value();
  for (double v : data) agg.Append(v);
  histograms.push_back(agg.Extract());

  for (const Histogram& h : histograms) {
    const std::vector<double> sse = PerBucketSse(h, data);
    const auto queries = GenerateUniformRangeQueries(c.n, 200, rng);
    for (const RangeQuery& q : queries) {
      const BoundedValue r = RangeSumWithBound(h, sse, q.lo, q.hi);
      const double truth = sums.Sum(q.lo, q.hi);
      EXPECT_LE(std::fabs(r.estimate - truth), r.error_bound + 1e-6)
          << "range [" << q.lo << "," << q.hi << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CertifiedBoundTest,
    ::testing::Values(BoundCase{"walk", 256, 8, 1},
                      BoundCase{"utilization", 512, 16, 2},
                      BoundCase{"piecewise", 300, 6, 3},
                      BoundCase{"zipf", 256, 10, 4},
                      BoundCase{"sines", 400, 12, 5}));

TEST(ErrorBoundsTest, StreamingBucketErrorsCertifyWindowQueries) {
  FixedWindowOptions options;
  options.window_size = 128;
  options.num_buckets = 8;
  options.epsilon = 0.2;
  options.rebuild_on_append = false;
  FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();
  const std::vector<double> stream =
      GenerateDataset(DatasetKind::kUtilization, 1000, 7);
  for (double v : stream) fw.Append(v);

  const Histogram& h = fw.Extract();
  const std::vector<double> errors = fw.BucketErrors();
  ASSERT_EQ(static_cast<int64_t>(errors.size()), h.num_buckets());
  // Streaming per-bucket SSEs must match the offline computation exactly.
  const std::vector<double> window = fw.window().ToVector();
  const std::vector<double> offline = PerBucketSse(h, window);
  for (size_t k = 0; k < errors.size(); ++k) {
    EXPECT_NEAR(errors[k], offline[k], 1e-6 * (1 + offline[k]));
  }

  // And the certified bounds hold on the live window.
  PrefixSums sums(window);
  Random rng(11);
  for (int t = 0; t < 100; ++t) {
    const int64_t lo = rng.UniformInt(0, 127);
    const int64_t hi = rng.UniformInt(lo, 128);
    const BoundedValue r = RangeSumWithBound(h, errors, lo, hi);
    EXPECT_LE(std::fabs(r.estimate - sums.Sum(lo, hi)), r.error_bound + 1e-6);
  }
}

TEST(ErrorBoundsTest, BoundIsUsefullyTight) {
  // The boundary-bucket bound should be far below the naive bound derived
  // from the total SSE (sqrt(span * total_sse)) on typical queries.
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, 512, 13);
  const Histogram h = BuildVOptimalHistogram(data, 16).histogram;
  const std::vector<double> sse = PerBucketSse(h, data);
  const double total_sse = h.SseAgainst(data);
  Random rng(17);
  double certified = 0.0, naive = 0.0;
  for (int t = 0; t < 200; ++t) {
    const int64_t lo = rng.UniformInt(0, 511);
    const int64_t hi = rng.UniformInt(lo + 1, 512);
    certified += RangeSumWithBound(h, sse, lo, hi).error_bound;
    naive += std::sqrt(static_cast<double>(hi - lo) * total_sse);
  }
  EXPECT_LT(certified, 0.25 * naive);
}

TEST(ErrorBoundsTest, PointAndAverageBoundsHold) {
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kRandomWalk, 256, 19);
  const Histogram h = BuildVOptimalHistogram(data, 10).histogram;
  const std::vector<double> sse = PerBucketSse(h, data);
  PrefixSums sums(data);

  for (int64_t i = 0; i < 256; ++i) {
    const BoundedValue p = PointEstimateWithBound(h, sse, i);
    EXPECT_LE(std::fabs(p.estimate - data[static_cast<size_t>(i)]),
              p.error_bound + 1e-9)
        << "point " << i;
  }
  Random rng(21);
  for (int t = 0; t < 100; ++t) {
    const int64_t lo = rng.UniformInt(0, 255);
    const int64_t hi = rng.UniformInt(lo + 1, 256);
    const BoundedValue a = RangeAverageWithBound(h, sse, lo, hi);
    const double truth = sums.Mean(lo, hi);
    EXPECT_LE(std::fabs(a.estimate - truth), a.error_bound + 1e-9);
  }
}

}  // namespace
}  // namespace streamhist
