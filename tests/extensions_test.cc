// Tests for the extension features: reservoir sampling [SRL99], histogram
// serialization, and batched arrivals (paper footnote 2).

#include <vector>

#include <gtest/gtest.h>

#include "src/core/agglomerative.h"
#include "src/core/fixed_window.h"
#include "src/core/histogram_io.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/quantile/reservoir.h"
#include "src/util/framing.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

TEST(ReservoirTest, CreateValidatesCapacity) {
  EXPECT_FALSE(ReservoirSample::Create(0).ok());
  EXPECT_TRUE(ReservoirSample::Create(1).ok());
}

TEST(ReservoirTest, HoldsEverythingBelowCapacity) {
  ReservoirSample r = ReservoirSample::Create(10).value();
  for (double v : {1.0, 2.0, 3.0}) r.Append(v);
  EXPECT_EQ(r.size(), 3);
  EXPECT_EQ(r.sample_size(), 3);
  EXPECT_DOUBLE_EQ(r.EstimateTotalSum(), 6.0);
  EXPECT_DOUBLE_EQ(r.EstimateMean(), 2.0);
}

TEST(ReservoirTest, SampleSizeIsCapped) {
  ReservoirSample r = ReservoirSample::Create(50).value();
  Random rng(1);
  for (int i = 0; i < 10000; ++i) r.Append(rng.UniformDouble(0, 1));
  EXPECT_EQ(r.sample_size(), 50);
  EXPECT_EQ(r.size(), 10000);
}

TEST(ReservoirTest, EstimatesAreUnbiasedIsh) {
  // Mean estimate over repeated seeds should land near the true mean.
  double total_mean = 0.0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    ReservoirSample r = ReservoirSample::Create(100, seed).value();
    Random rng(seed + 1000);
    for (int i = 0; i < 5000; ++i) r.Append(rng.UniformDouble(0, 100));
    total_mean += r.EstimateMean();
  }
  EXPECT_NEAR(total_mean / 30.0, 50.0, 3.0);
}

TEST(ReservoirTest, CountInRangeScales) {
  ReservoirSample r = ReservoirSample::Create(500, 3).value();
  Random rng(7);
  for (int i = 0; i < 20000; ++i) r.Append(rng.UniformDouble(0, 100));
  // ~25% of points in [0, 25).
  EXPECT_NEAR(r.EstimateCountInRange(0, 25), 5000.0, 1000.0);
}

TEST(SerializationTest, RoundTripPreservesHistogram) {
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, 300, 1);
  const Histogram original = BuildVOptimalHistogram(data, 12).histogram;
  const std::string bytes = SerializeHistogram(original);
  auto back = DeserializeHistogram(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value(), original);
}

TEST(SerializationTest, EmptyHistogramRoundTrips) {
  auto back = DeserializeHistogram(SerializeHistogram(Histogram()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_buckets(), 0);
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeHistogram("not a histogram").ok());
  EXPECT_FALSE(DeserializeHistogram("").ok());
}

TEST(SerializationTest, RejectsTruncation) {
  const Histogram h = Histogram::FromBucketsUnchecked(
      {Bucket{0, 2, 1.0}, Bucket{2, 4, 2.0}});
  std::string bytes = SerializeHistogram(h);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(DeserializeHistogram(bytes).ok());
}

TEST(SerializationTest, RejectsTrailingBytes) {
  std::string bytes = SerializeHistogram(Histogram());
  bytes.push_back('x');
  EXPECT_FALSE(DeserializeHistogram(bytes).ok());
}

TEST(SerializationTest, RejectsStructurallyInvalidBuckets) {
  // Hand-craft a frame (valid magic, version, and CRC) whose buckets have a
  // gap: deserialization must run the same validation as Histogram::Make,
  // not just the checksum.
  ByteWriter payload;
  payload.PutU64(2);  // bucket count
  payload.PutI64(0);
  payload.PutI64(2);
  payload.PutF64(1.0);
  payload.PutI64(3);  // gap: previous bucket ended at 2
  payload.PutI64(5);
  payload.PutF64(2.0);
  const std::string bytes =
      WrapFrame(/*magic=*/0x53484947, /*version=*/2, payload.bytes());
  EXPECT_FALSE(DeserializeHistogram(bytes).ok());
}

TEST(BatchArrivalsTest, FixedWindowBatchMatchesPointwise) {
  const std::vector<double> stream =
      GenerateDataset(DatasetKind::kRandomWalk, 300, 5);
  FixedWindowOptions options;
  options.window_size = 64;
  options.num_buckets = 6;
  options.epsilon = 0.2;
  options.rebuild_on_append = true;

  FixedWindowHistogram pointwise =
      FixedWindowHistogram::Create(options).value();
  for (double v : stream) pointwise.Append(v);

  FixedWindowHistogram batched = FixedWindowHistogram::Create(options).value();
  for (size_t i = 0; i < stream.size(); i += 50) {
    const size_t end = std::min(stream.size(), i + 50);
    batched.AppendBatch(std::span<const double>(stream.data() + i, end - i));
  }
  EXPECT_EQ(pointwise.Extract(), batched.Extract());
  EXPECT_DOUBLE_EQ(pointwise.ApproxError(), batched.ApproxError());
}

TEST(BatchArrivalsTest, AgglomerativeBatchMatchesPointwise) {
  const std::vector<double> stream =
      GenerateDataset(DatasetKind::kZipf, 400, 7);
  ApproxHistogramOptions options;
  options.num_buckets = 5;
  options.epsilon = 0.2;

  AgglomerativeHistogram pointwise =
      AgglomerativeHistogram::Create(options).value();
  for (double v : stream) pointwise.Append(v);

  AgglomerativeHistogram batched =
      AgglomerativeHistogram::Create(options).value();
  batched.AppendBatch(stream);

  EXPECT_EQ(pointwise.Extract(), batched.Extract());
  EXPECT_DOUBLE_EQ(pointwise.ApproxError(), batched.ApproxError());
}

TEST(BatchArrivalsTest, EmptyBatchIsNoOp) {
  FixedWindowOptions options;
  options.window_size = 8;
  options.num_buckets = 2;
  FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();
  fw.Append(1.0);
  const Histogram before = fw.Extract();
  fw.AppendBatch({});
  EXPECT_EQ(fw.Extract(), before);
}

}  // namespace
}  // namespace streamhist
