// Fault-injection coverage (util/fault.h): every simulated storage failure —
// short write, fsync failure, rename failure, bit rot, truncation — must
// surface as a clean error Status, and a failed save must leave the previous
// checkpoint loadable. These tests run under ASan/UBSan in CI with every
// point armed one at a time.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/engine/query_engine.h"
#include "src/server/tcp_server.h"
#include "src/util/fault.h"
#include "src/util/fileio.h"
#include "src/util/governor.h"
#include "tcp_test_client.h"

namespace streamhist {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }

  std::string TempFile(const std::string& name) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    return path;
  }
};

TEST_F(FaultInjectionTest, RegistryArmsAndDisarms) {
  EXPECT_FALSE(fault::Triggered("test.point"));
  EXPECT_EQ(fault::TriggerCount("test.point"), 0);
  fault::Arm("test.point");
  EXPECT_EQ(fault::Armed(), (std::vector<std::string>{"test.point"}));
  EXPECT_TRUE(fault::Triggered("test.point"));
  EXPECT_FALSE(fault::Triggered("other.point"));
  EXPECT_EQ(fault::TriggerCount("test.point"), 1);
  fault::Disarm("test.point");
  EXPECT_FALSE(fault::Triggered("test.point"));
}

TEST_F(FaultInjectionTest, SpecParserArmsCommaSeparatedPoints) {
  fault::ArmFromSpec("a.b, c.d ,,e.f");
  EXPECT_EQ(fault::Armed(), (std::vector<std::string>{"a.b", "c.d", "e.f"}));
  fault::DisarmAll();
  EXPECT_TRUE(fault::Armed().empty());
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    fault::ScopedFault armed("scoped.point");
    EXPECT_TRUE(fault::Triggered("scoped.point"));
  }
  EXPECT_FALSE(fault::Triggered("scoped.point"));
}

TEST_F(FaultInjectionTest, ShortWriteLeavesDestinationUntouched) {
  const std::string path = TempFile("short_write.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "original contents").ok());

  fault::ScopedFault armed("fileio.short_write");
  const Status status = AtomicWriteFile(path, "replacement that gets torn");
  EXPECT_FALSE(status.ok());
  EXPECT_GE(fault::TriggerCount("fileio.short_write"), 1);

  fault::DisarmAll();
  const auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), "original contents");
}

TEST_F(FaultInjectionTest, FsyncAndRenameFailuresLeaveDestinationUntouched) {
  for (const char* point : {"fileio.fsync", "fileio.rename"}) {
    const std::string path = TempFile(std::string("fail_") + point);
    ASSERT_TRUE(AtomicWriteFile(path, "stable").ok());
    {
      fault::ScopedFault armed(point);
      EXPECT_FALSE(AtomicWriteFile(path, "doomed").ok()) << point;
    }
    const auto bytes = ReadFileToString(path);
    ASSERT_TRUE(bytes.ok()) << point;
    EXPECT_EQ(bytes.value(), "stable") << point;
  }
}

TEST_F(FaultInjectionTest, ReadFaultsCorruptTheBytes) {
  const std::string path = TempFile("read_faults.bin");
  const std::string payload(100, 'x');
  ASSERT_TRUE(AtomicWriteFile(path, payload).ok());
  {
    fault::ScopedFault armed("fileio.read.bitflip");
    const auto bytes = ReadFileToString(path);
    ASSERT_TRUE(bytes.ok());
    EXPECT_NE(bytes.value(), payload);
    EXPECT_EQ(bytes.value().size(), payload.size());
  }
  {
    fault::ScopedFault armed("fileio.read.truncate");
    const auto bytes = ReadFileToString(path);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value().size(), payload.size() / 2);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: checkpointing under every fault, one at a time. The invariant:
// LoadCheckpoint never crashes, and after a failed save the *previous*
// checkpoint still loads with the old answers.

QueryEngine PopulatedEngine(int points, uint64_t seed) {
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  config.epsilon = 0.2;
  EXPECT_TRUE(engine.CreateStream("eth0", config).ok());
  EXPECT_TRUE(
      engine
          .AppendBatch("eth0",
                       GenerateDataset(DatasetKind::kUtilization, points, seed))
          .ok());
  return engine;
}

TEST_F(FaultInjectionTest, FailedSavePreservesOlderCheckpoint) {
  for (const char* point :
       {"fileio.short_write", "fileio.fsync", "fileio.rename"}) {
    const std::string path = TempFile(std::string("save_") + point);
    QueryEngine engine = PopulatedEngine(500, 3);
    ASSERT_TRUE(engine.SaveCheckpoint(path).ok());
    const std::string old_sum = engine.Execute("SUM eth0 0 64").value();

    // Mutate the engine, then fail the second save.
    ASSERT_TRUE(engine.AppendBatch("eth0", std::vector<double>(100, 9.0)).ok());
    {
      fault::ScopedFault armed(point);
      EXPECT_FALSE(engine.SaveCheckpoint(path).ok()) << point;
    }

    // The file on disk is still the complete older checkpoint.
    QueryEngine recovered;
    const auto report = recovered.LoadCheckpoint(path);
    ASSERT_TRUE(report.ok()) << point << ": " << report.status();
    EXPECT_TRUE(report->fully_loaded()) << point;
    EXPECT_EQ(recovered.Execute("SUM eth0 0 64").value(), old_sum) << point;
  }
}

TEST_F(FaultInjectionTest, BitflippedCheckpointLoadsCleanlyOrPartially) {
  const std::string path = TempFile("load_bitflip.ckpt");
  QueryEngine engine = PopulatedEngine(500, 3);
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());

  fault::ScopedFault armed("fileio.read.bitflip");
  QueryEngine recovered;
  const auto report = recovered.LoadCheckpoint(path);
  // The flip lands mid-file (inside a stream section): either the load fails
  // outright with a clean Status or it reports the damaged stream as dropped.
  if (report.ok()) {
    EXPECT_FALSE(report->fully_loaded());
  } else {
    EXPECT_FALSE(report.status().ok());
  }
}

TEST_F(FaultInjectionTest, TruncatedCheckpointLoadsCleanlyOrPartially) {
  const std::string path = TempFile("load_truncate.ckpt");
  QueryEngine engine = PopulatedEngine(500, 3);
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());

  fault::ScopedFault armed("fileio.read.truncate");
  QueryEngine recovered;
  const auto report = recovered.LoadCheckpoint(path);
  if (report.ok()) {
    EXPECT_FALSE(report->fully_loaded());
  }
}

// ---------------------------------------------------------------------------
// Save retry: transient faults that heal within the retry budget are
// invisible to the caller (beyond the attempt count); persistent faults
// still fail after exactly kSaveAttempts tries.

int64_t g_backoff_calls = 0;  // reset per test; bumped by the fake sleeper

TEST_F(FaultInjectionTest, TransientFsyncFaultSelfHealsViaRetry) {
  g_backoff_calls = 0;
  QueryEngine::SetBackoffSleeperForTest(+[](int64_t) { ++g_backoff_calls; });
  const std::string path = TempFile("transient.ckpt");
  QueryEngine engine = PopulatedEngine(300, 5);

  // Two fires < three attempts: the third write goes through.
  fault::Arm("fileio.fsync.transient", 2);
  QueryEngine::SaveReport report;
  const Status status = engine.SaveCheckpoint(path, &report);
  QueryEngine::SetBackoffSleeperForTest(nullptr);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(g_backoff_calls, 2);  // slept between attempts 1-2 and 2-3
  EXPECT_EQ(fault::TriggerCount("fileio.fsync.transient"), 2);
  EXPECT_TRUE(fault::Armed().empty());  // budget spent, self-disarmed

  // The checkpoint on disk is complete and loadable.
  QueryEngine recovered;
  const auto loaded = recovered.LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->fully_loaded());
}

TEST_F(FaultInjectionTest, PersistentFaultExhaustsRetriesAndFails) {
  g_backoff_calls = 0;
  QueryEngine::SetBackoffSleeperForTest(+[](int64_t) { ++g_backoff_calls; });
  const std::string path = TempFile("persistent.ckpt");
  QueryEngine engine = PopulatedEngine(300, 5);
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());
  const std::string old_sum = engine.Execute("SUM eth0 0 64").value();

  ASSERT_TRUE(engine.AppendBatch("eth0", std::vector<double>(50, 4.0)).ok());
  QueryEngine::SaveReport report;
  {
    // A fire budget >= the retry limit behaves like a persistent fault.
    fault::ScopedFault armed("fileio.fsync.transient",
                             QueryEngine::kSaveAttempts);
    const Status status = engine.SaveCheckpoint(path, &report);
    EXPECT_FALSE(status.ok());
  }
  QueryEngine::SetBackoffSleeperForTest(nullptr);
  EXPECT_EQ(report.attempts, QueryEngine::kSaveAttempts);
  EXPECT_EQ(g_backoff_calls, QueryEngine::kSaveAttempts - 1);

  // Every attempt used the temp-file discipline: the old checkpoint is whole.
  QueryEngine recovered;
  const auto loaded = recovered.LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(recovered.Execute("SUM eth0 0 64").value(), old_sum);
}

TEST_F(FaultInjectionTest, SaveVerbReportsRetriedAttempts) {
  QueryEngine::SetBackoffSleeperForTest(+[](int64_t) {});
  const std::string path = TempFile("verb_retry.ckpt");
  QueryEngine engine = PopulatedEngine(100, 9);
  fault::Arm("fileio.fsync.transient", 1);
  const auto saved = engine.Execute("SAVE " + path);
  QueryEngine::SetBackoffSleeperForTest(nullptr);
  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_NE(saved->find("checkpointed 1 stream(s)"), std::string::npos)
      << *saved;
  EXPECT_NE(saved->find("after 2 attempts"), std::string::npos) << *saved;
}

TEST_F(FaultInjectionTest, KnownPointsMatchesHeaderRegistry) {
  // Every point the header documents as wired must be in the registry, and
  // the registry must be sorted (ArmFromSpec binary-searches it).
  const std::vector<std::string> known = fault::KnownPoints();
  EXPECT_TRUE(std::is_sorted(known.begin(), known.end()));
  const std::vector<std::string> expected = {
      "deadline.expire",        "fileio.fsync",
      "fileio.fsync.transient", "fileio.read.bitflip",
      "fileio.read.truncate",   "fileio.rename",
      "fileio.short_write",     "governor.oom",
      "net.accept",             "net.partition",
      "net.read.short",         "net.write.eagain",
      "repl.frame.corrupt",     "repl.subscribe",
      "wal.append.short",       "wal.fsync",
      "wal.replay.corrupt",     "wal.seal",
  };
  EXPECT_EQ(known, expected);
}

// ---------------------------------------------------------------------------
// WAL fault points (util/wal.h): a durability failure must surface as a
// typed error BEFORE the value is applied — the acked-implies-durable
// contract seen from the failure side — and the log must stay usable.

class WalFaultTest : public FaultInjectionTest {
 protected:
  std::string TempWalDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  QueryEngine::WalConfig AlwaysConfig() {
    QueryEngine::WalConfig config;
    config.options.policy = wal::SyncPolicy::kAlways;
    return config;
  }
};

TEST_F(WalFaultTest, FsyncFailureIsTypedAndValueIsNotAcked) {
  const std::string dir = TempWalDir("wal_fsync_fault");
  QueryEngine engine;
  ASSERT_TRUE(engine.OpenWal(dir, AlwaysConfig()).ok());
  ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());

  fault::Arm("wal.fsync", 1);
  const auto refused = engine.Execute("APPEND eth0 1 2 3");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kIOError);
  // Not acked means not applied: the window is exactly as before.
  EXPECT_EQ(engine.Execute("COUNT eth0").value(), "0");

  // The budget fired once; the log keeps working and the next append lands.
  ASSERT_TRUE(engine.Execute("APPEND eth0 4 5").ok());
  EXPECT_EQ(engine.Execute("COUNT eth0").value(), "2");

  // Recovery honours the ONE-WAY invariant: every acked value survives; a
  // written-but-unacked record (the frame landed, only its fsync "failed")
  // may legally reappear as a ghost. Here it deterministically does: 3
  // ghost values + 2 acked.
  ASSERT_TRUE(engine.CloseWal().ok());
  QueryEngine recovered;
  const auto recovery = recovered.OpenWal(dir, AlwaysConfig());
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_EQ(recovered.Execute("COUNT eth0").value(), "5");
}

TEST_F(WalFaultTest, FsyncFailureOverTcpIsTypedErrNotAck) {
  const std::string dir = TempWalDir("wal_fsync_tcp");
  QueryEngine engine;
  ASSERT_TRUE(engine.OpenWal(dir, AlwaysConfig()).ok());
  ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
  const auto server = net::TcpServer::Start(engine, net::ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();
  testing_net::TcpTestClient client(server.value()->port());
  ASSERT_TRUE(client.connected());

  fault::Arm("wal.fsync", 1);
  ASSERT_TRUE(client.Send("APPEND eth0 7\n"));
  const testing_net::Reply refused = client.ReadReply();
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, "IO_ERROR") << refused.message;

  ASSERT_TRUE(client.Send("COUNT eth0\n"));
  const testing_net::Reply count = client.ReadReply();
  ASSERT_TRUE(count.ok);
  EXPECT_EQ(count.lines[0], "0");  // the refused value never entered
}

TEST_F(WalFaultTest, ShortAppendWriteIsTypedAndLogStaysUsable) {
  const std::string dir = TempWalDir("wal_short_fault");
  QueryEngine engine;
  ASSERT_TRUE(engine.OpenWal(dir, AlwaysConfig()).ok());
  ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());

  fault::Arm("wal.append.short", 1);
  const auto refused = engine.Execute("APPEND eth0 1");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kIOError);
  EXPECT_EQ(engine.Execute("COUNT eth0").value(), "0");

  // The torn half-frame was cut back out of the file: later records parse.
  ASSERT_TRUE(engine.Execute("APPEND eth0 2").ok());
  ASSERT_TRUE(engine.CloseWal().ok());
  QueryEngine recovered;
  ASSERT_TRUE(recovered.OpenWal(dir, AlwaysConfig()).ok());
  EXPECT_EQ(recovered.Execute("COUNT eth0").value(), "1");
}

TEST_F(WalFaultTest, SealFailureRefusesAppendButLogSurvives) {
  const std::string dir = TempWalDir("wal_seal_fault");
  QueryEngine::WalConfig config = AlwaysConfig();
  config.options.segment_bytes = 256;  // rotate after a handful of records
  QueryEngine engine;
  ASSERT_TRUE(engine.OpenWal(dir, config).ok());
  ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());

  fault::Arm("wal.seal", 1);
  int64_t applied = 0;
  bool saw_seal_failure = false;
  for (int i = 0; i < 64; ++i) {
    const auto appended = engine.Execute("APPEND eth0 " + std::to_string(i));
    if (appended.ok()) {
      ++applied;
    } else {
      EXPECT_EQ(appended.status().code(), StatusCode::kIOError);
      saw_seal_failure = true;
    }
  }
  EXPECT_TRUE(saw_seal_failure);
  EXPECT_GE(fault::TriggerCount("wal.seal"), 1);
  EXPECT_EQ(engine.Execute("COUNT eth0").value(), std::to_string(applied));

  // Every acked append survives recovery, seal hiccup notwithstanding.
  ASSERT_TRUE(engine.CloseWal().ok());
  QueryEngine recovered;
  const auto recovery = recovered.OpenWal(dir, config);
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_EQ(recovered.Execute("COUNT eth0").value(), std::to_string(applied));
}

TEST_F(WalFaultTest, ReplayCorruptionIsCountedNeverFatal) {
  const std::string dir = TempWalDir("wal_replay_fault");
  {
    QueryEngine engine;
    ASSERT_TRUE(engine.OpenWal(dir, AlwaysConfig()).ok());
    ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
    ASSERT_TRUE(engine.Execute("APPEND eth0 1 2 3 4").ok());
    ASSERT_TRUE(engine.CloseWal().ok());
  }
  fault::ScopedFault armed("wal.replay.corrupt");
  QueryEngine recovered;
  const auto recovery = recovered.OpenWal(dir, AlwaysConfig());
  // The injected mid-segment flip must never make recovery fail — the
  // damaged record is skipped (counted corrupt) or the tail is cut.
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_GE(fault::TriggerCount("wal.replay.corrupt"), 1);
  const auto& open = recovery.value().open;
  EXPECT_GE(open.corrupt_records + (open.tail_truncated ? 1 : 0), 1);
}

// ---------------------------------------------------------------------------
// Network fault points (src/server): accept-path failures, short reads, and
// transient write refusals must degrade a single connection, never the
// server — and a peer that vanishes mid-statement must leave no trace
// beyond its counter.

TEST_F(FaultInjectionTest, NetAcceptFaultDropsOnlyThatSocket) {
  QueryEngine engine;
  const auto server = net::TcpServer::Start(engine, net::ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();

  fault::Arm("net.accept", 1);
  testing_net::TcpTestClient dropped(server.value()->port());
  ASSERT_TRUE(dropped.connected());  // the handshake lands in the backlog
  dropped.ReadUntilEof();
  EXPECT_TRUE(dropped.eof());  // ...but the acceptor discarded the socket
  ASSERT_TRUE(testing_net::WaitFor(
      [&] { return server.value()->stats().accept_faults == 1; }));

  // The budget fired once: the very next connection is served normally.
  testing_net::TcpTestClient client(server.value()->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("LIST\n"));
  EXPECT_TRUE(client.ReadReply().ok);
  EXPECT_EQ(server.value()->stats().accepted, 1);
}

TEST_F(FaultInjectionTest, NetShortReadsStillAssembleRequests) {
  QueryEngine engine;
  const auto server = net::TcpServer::Start(engine, net::ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();
  testing_net::TcpTestClient client(server.value()->port());
  ASSERT_TRUE(client.connected());

  // The first reads trickle in one byte at a time; the parser must simply
  // wait for the newline like any other partial arrival.
  fault::Arm("net.read.short", 8);
  ASSERT_TRUE(client.Send("CREATE eth0 64 8\nCOUNT eth0\n"));
  testing_net::Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  EXPECT_EQ(reply.lines[0], "0");
  EXPECT_GE(fault::TriggerCount("net.read.short"), 1);
}

TEST_F(FaultInjectionTest, NetWriteEagainRetriesViaWritability) {
  QueryEngine engine;
  const auto server = net::TcpServer::Start(engine, net::ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();
  testing_net::TcpTestClient client(server.value()->port());
  ASSERT_TRUE(client.connected());

  // The first flush attempt reports EAGAIN; the reply must still arrive
  // whole once the loop's EPOLLOUT retry writes it.
  fault::Arm("net.write.eagain", 1);
  ASSERT_TRUE(client.Send("LIST\n"));
  const testing_net::Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  EXPECT_EQ(fault::TriggerCount("net.write.eagain"), 1);
}

TEST_F(FaultInjectionTest, PeerVanishingMidStatementLeaksNothing) {
  QueryEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
  const auto server = net::TcpServer::Start(engine, net::ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();
  const int64_t governor_before = governor::Used();

  {
    testing_net::TcpTestClient client(server.value()->port());
    ASSERT_TRUE(client.connected());
    // Half a statement, no newline — then the peer disappears.
    ASSERT_TRUE(client.Send("APPEND eth0 1 2 3"));
    ASSERT_TRUE(testing_net::WaitFor(
        [&] { return server.value()->stats().bytes_in > 0; }));
  }
  ASSERT_TRUE(testing_net::WaitFor(
      [&] { return server.value()->stats().dropped_mid_request == 1; }));
  ASSERT_TRUE(testing_net::WaitFor(
      [&] { return server.value()->stats().active == 0; }));

  // Nothing executed, nothing charged, nothing recorded: the half-request
  // evaporated with its connection.
  ASSERT_TRUE(testing_net::WaitFor(
      [&] { return governor::Used() == governor_before; }));
  EXPECT_EQ(server.value()->stats().statements, 0);
  EXPECT_EQ(engine.Execute("STATS eth0 APPEND").value(),
            "no statistics recorded for 'eth0' APPEND");
  EXPECT_EQ(engine.Execute("COUNT eth0").value(), "0");
}

TEST_F(FaultInjectionTest, EveryFaultArmedTogetherStillFailsCleanly) {
  const std::string path = TempFile("all_faults.ckpt");
  QueryEngine engine = PopulatedEngine(200, 7);
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());

  fault::ArmFromSpec(
      "fileio.short_write,fileio.fsync,fileio.rename,"
      "fileio.read.bitflip,fileio.read.truncate");
  EXPECT_FALSE(engine.SaveCheckpoint(path).ok());
  QueryEngine recovered;
  (void)recovered.LoadCheckpoint(path);  // must not crash
  fault::DisarmAll();

  // With faults cleared, the original checkpoint is intact.
  QueryEngine clean;
  const auto report = clean.LoadCheckpoint(path);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->fully_loaded());
}

}  // namespace
}  // namespace streamhist
