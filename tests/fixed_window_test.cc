#include "src/core/fixed_window.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/bucket_cost.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

FixedWindowHistogram MakeFw(int64_t window, int64_t buckets, double epsilon,
                            bool rebuild_on_append = true) {
  FixedWindowOptions options;
  options.window_size = window;
  options.num_buckets = buckets;
  options.epsilon = epsilon;
  options.rebuild_on_append = rebuild_on_append;
  return FixedWindowHistogram::Create(options).value();
}

TEST(FixedWindowTest, CreateValidatesOptions) {
  FixedWindowOptions bad;
  bad.window_size = 0;
  EXPECT_FALSE(FixedWindowHistogram::Create(bad).ok());
  bad.window_size = 8;
  bad.num_buckets = 0;
  EXPECT_FALSE(FixedWindowHistogram::Create(bad).ok());
  bad.num_buckets = 2;
  bad.epsilon = 0.0;
  EXPECT_FALSE(FixedWindowHistogram::Create(bad).ok());
  bad.epsilon = 0.5;
  EXPECT_TRUE(FixedWindowHistogram::Create(bad).ok());
}

TEST(FixedWindowTest, EmptyWindowExtractsEmptyHistogram) {
  FixedWindowHistogram fw = MakeFw(8, 2, 1.0);
  EXPECT_EQ(fw.Extract().num_buckets(), 0);
  EXPECT_DOUBLE_EQ(fw.ApproxError(), 0.0);
}

// The paper's Example 1, first phase: stream 100,0,0,0,1,1,1,1 with eps such
// that delta = 1 and B = 2. The level-1 interval list should be
// (1,1),(2,8) in the paper's 1-based notation — i.e. endpoints {1, 8} in
// prefix lengths — because HERROR[1,1] = 0 and all of [2..8] stays within a
// factor (1+1) of HERROR[2,1].
TEST(FixedWindowTest, PaperExampleOneInitialWindow) {
  // delta = eps/(2B) = 1  =>  eps = 4 with B = 2.
  FixedWindowHistogram fw = MakeFw(8, 2, 4.0);
  for (double v : {100.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0}) fw.Append(v);

  // Optimal split: {100} | {0,0,0,1,1,1,1}; SSE = 12/7.
  const double opt = 3 * (4.0 / 7) * (4.0 / 7) + 4 * (3.0 / 7) * (3.0 / 7);
  EXPECT_LE(fw.ApproxError(), (1 + 4.0) * opt + 1e-9);
  // With HERROR[1,1]=0 the first interval is exactly the prefix {100}, so the
  // approximate solution actually equals the optimum here.
  EXPECT_NEAR(fw.ApproxError(), opt, 1e-9);
  const Histogram& h = fw.Extract();
  ASSERT_EQ(h.num_buckets(), 2);
  EXPECT_EQ(h.buckets()[0].end, 1);
  EXPECT_DOUBLE_EQ(h.buckets()[0].value, 100.0);
}

// The paper's Example 1, after the slide: 100 is evicted and another 1
// appended, giving window 0,0,0,1,1,1,1,1. The level-1 endpoints become
// {3, 6, 8} (prefix lengths) and the optimal solution (1,3),(4,8) in the
// paper's notation — buckets [0,3) and [3,8) here — is found with zero error.
TEST(FixedWindowTest, PaperExampleOneAfterSlide) {
  FixedWindowHistogram fw = MakeFw(8, 2, 4.0);
  for (double v : {100.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0}) fw.Append(v);
  fw.Append(1.0);  // evicts 100

  EXPECT_NEAR(fw.ApproxError(), 0.0, 1e-9);
  const Histogram& h = fw.Extract();
  ASSERT_EQ(h.num_buckets(), 2);
  EXPECT_EQ(h.buckets()[0].begin, 0);
  EXPECT_EQ(h.buckets()[0].end, 3);
  EXPECT_DOUBLE_EQ(h.buckets()[0].value, 0.0);
  EXPECT_EQ(h.buckets()[1].end, 8);
  EXPECT_DOUBLE_EQ(h.buckets()[1].value, 1.0);
}

TEST(FixedWindowTest, ExtractCoversWindowAndValidates) {
  FixedWindowHistogram fw = MakeFw(16, 4, 0.5);
  Random rng(3);
  for (int i = 0; i < 40; ++i) {
    fw.Append(rng.UniformInt(0, 100));
    const Histogram& h = fw.Extract();
    EXPECT_TRUE(h.Validate().ok());
    EXPECT_EQ(h.domain_size(), fw.window().size());
    EXPECT_LE(h.num_buckets(), 4);
  }
}

TEST(FixedWindowTest, LazyRebuildMatchesEagerRebuild) {
  FixedWindowHistogram eager = MakeFw(32, 3, 0.2, /*rebuild_on_append=*/true);
  FixedWindowHistogram lazy = MakeFw(32, 3, 0.2, /*rebuild_on_append=*/false);
  Random rng(9);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.Gaussian(10, 5);
    eager.Append(v);
    lazy.Append(v);
  }
  EXPECT_DOUBLE_EQ(eager.ApproxError(), lazy.ApproxError());
  EXPECT_EQ(eager.Extract(), lazy.Extract());
}

TEST(FixedWindowTest, ApproxErrorMatchesExtractedHistogramSse) {
  FixedWindowHistogram fw = MakeFw(64, 5, 0.3);
  Random rng(17);
  for (int i = 0; i < 200; ++i) fw.Append(rng.UniformInt(0, 50));
  const std::vector<double> window = fw.window().ToVector();
  // The streamed error must match the SSE of the extracted histogram (same
  // boundaries, mean representatives).
  EXPECT_NEAR(fw.ApproxError(), fw.Extract().SseAgainst(window),
              1e-6 * (1.0 + fw.ApproxError()));
}

TEST(FixedWindowTest, SingleBucketMatchesPrefixError) {
  FixedWindowHistogram fw = MakeFw(16, 1, 0.1);
  Random rng(23);
  std::vector<double> tail;
  for (int i = 0; i < 50; ++i) {
    const double v = rng.UniformDouble(0, 10);
    fw.Append(v);
    tail.push_back(v);
  }
  const std::vector<double> window = fw.window().ToVector();
  EXPECT_NEAR(fw.ApproxError(), OptimalSse(window, 1), 1e-6);
}

TEST(FixedWindowTest, RangeSumUsesExtractedHistogram) {
  FixedWindowHistogram fw = MakeFw(8, 2, 4.0);
  for (double v : {100.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0}) fw.Append(v);
  // Bucket [0,1)=100, [1,8)=4/7.
  EXPECT_NEAR(fw.RangeSum(0, 8), 104.0, 1e-9);
  EXPECT_NEAR(fw.RangeSum(1, 8), 4.0, 1e-9);
}

TEST(FixedWindowTest, IntervalCountStaysModest) {
  // Bounded integer inputs: interval count per level is O((1/delta) log n).
  FixedWindowHistogram fw = MakeFw(256, 4, 0.4);
  Random rng(31);
  for (int i = 0; i < 512; ++i) fw.Append(rng.UniformInt(0, 1024));
  const double delta = fw.delta();
  const double bound =
      3.0 * (1.0 / delta) * std::log(1024.0 * 1024.0 * 256.0) *
      static_cast<double>(4 - 1);
  EXPECT_GT(fw.last_total_intervals(), 0);
  EXPECT_LT(static_cast<double>(fw.last_total_intervals()), bound);
}

// Property sweep: the maintained histogram's error is within (1+eps) of the
// optimal B-bucket histogram of the *current window*, at every step of a
// sliding stream, across datasets, window sizes, B and eps.
struct GuaranteeCase {
  const char* dataset;
  int64_t window;
  int64_t buckets;
  double epsilon;
  uint64_t seed;
};

void PrintTo(const GuaranteeCase& c, std::ostream* os) {
  *os << c.dataset << "/n" << c.window << "/B" << c.buckets << "/eps"
      << c.epsilon << "/s" << c.seed;
}

class FixedWindowGuaranteeTest
    : public ::testing::TestWithParam<GuaranteeCase> {};

TEST_P(FixedWindowGuaranteeTest, WithinOnePlusEpsilonOfOptimal) {
  const GuaranteeCase c = GetParam();
  const std::vector<double> stream =
      GenerateDataset(ParseDatasetKind(c.dataset), 3 * c.window, c.seed);
  FixedWindowHistogram fw = MakeFw(c.window, c.buckets, c.epsilon);
  int64_t checked = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    fw.Append(stream[i]);
    // Checking every step is O(n^2 B) per step; sample a handful of steps.
    if (!fw.window().full() || i % 37 != 0) continue;
    const std::vector<double> window = fw.window().ToVector();
    const double opt = OptimalSse(window, c.buckets);
    EXPECT_LE(fw.ApproxError(), (1.0 + c.epsilon) * opt + 1e-6)
        << "at stream position " << i << " (opt=" << opt << ")";
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FixedWindowGuaranteeTest,
    ::testing::Values(GuaranteeCase{"walk", 64, 4, 0.5, 1},
                      GuaranteeCase{"walk", 64, 4, 0.1, 2},
                      GuaranteeCase{"walk", 128, 8, 0.2, 3},
                      GuaranteeCase{"piecewise", 64, 4, 0.5, 4},
                      GuaranteeCase{"piecewise", 128, 6, 0.1, 5},
                      GuaranteeCase{"zipf", 64, 4, 0.3, 6},
                      GuaranteeCase{"zipf", 96, 8, 1.0, 7},
                      GuaranteeCase{"sines", 128, 8, 0.2, 8},
                      GuaranteeCase{"utilization", 128, 6, 0.5, 9},
                      GuaranteeCase{"utilization", 64, 2, 0.05, 10}));

// --- Max-abs error metric (the paper's footnote-3 generalization) ---

FixedWindowHistogram MakeMaxAbsFw(int64_t window, int64_t buckets,
                                  double epsilon) {
  FixedWindowOptions options;
  options.window_size = window;
  options.num_buckets = buckets;
  options.epsilon = epsilon;
  options.rebuild_on_append = false;
  options.metric = WindowErrorMetric::kMaxAbs;
  return FixedWindowHistogram::Create(options).value();
}

TEST(FixedWindowMaxAbsTest, PiecewiseConstantIsExact) {
  FixedWindowHistogram fw = MakeMaxAbsFw(12, 3, 0.5);
  for (double v : {4.0, 4.0, 4.0, -1.0, -1.0, -1.0, -1.0, 9.0, 9.0, 9.0, 9.0,
                   9.0}) {
    fw.Append(v);
  }
  EXPECT_NEAR(fw.ApproxError(), 0.0, 1e-12);
  const Histogram& h = fw.Extract();
  ASSERT_EQ(h.num_buckets(), 3);
  EXPECT_DOUBLE_EQ(h.buckets()[0].value, 4.0);   // midrange of a constant run
  EXPECT_DOUBLE_EQ(h.buckets()[1].value, -1.0);
  EXPECT_DOUBLE_EQ(h.buckets()[2].value, 9.0);
}

TEST(FixedWindowMaxAbsTest, RepresentativeIsMidrange) {
  FixedWindowHistogram fw = MakeMaxAbsFw(4, 1, 0.5);
  for (double v : {0.0, 10.0, 2.0, 4.0}) fw.Append(v);
  const Histogram& h = fw.Extract();
  ASSERT_EQ(h.num_buckets(), 1);
  EXPECT_DOUBLE_EQ(h.buckets()[0].value, 5.0);  // (min+max)/2
  EXPECT_DOUBLE_EQ(fw.ApproxError(), 5.0);      // (max-min)/2
}

class FixedWindowMaxAbsGuaranteeTest
    : public ::testing::TestWithParam<GuaranteeCase> {};

TEST_P(FixedWindowMaxAbsGuaranteeTest, WithinOnePlusEpsilonOfOptimal) {
  const GuaranteeCase c = GetParam();
  const std::vector<double> stream =
      GenerateDataset(ParseDatasetKind(c.dataset), 2 * c.window, c.seed);
  FixedWindowHistogram fw = MakeMaxAbsFw(c.window, c.buckets, c.epsilon);
  int64_t checked = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    fw.Append(stream[i]);
    if (!fw.window().full() || i % 41 != 0) continue;
    const std::vector<double> window = fw.window().ToVector();
    const MaxAbsBucketCost cost(window);
    const double opt = BuildOptimalHistogram(cost, c.buckets).error;
    EXPECT_LE(fw.ApproxError(), (1.0 + c.epsilon) * opt + 1e-9)
        << "at stream position " << i << " (opt=" << opt << ")";
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FixedWindowMaxAbsGuaranteeTest,
    ::testing::Values(GuaranteeCase{"walk", 64, 4, 0.5, 21},
                      GuaranteeCase{"piecewise", 96, 6, 0.2, 22},
                      GuaranteeCase{"zipf", 64, 4, 1.0, 23},
                      GuaranteeCase{"utilization", 128, 8, 0.5, 24}));

}  // namespace
}  // namespace streamhist
