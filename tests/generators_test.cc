#include "src/data/generators.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace streamhist {
namespace {

TEST(GeneratorsTest, UtilizationSeriesRespectsBoundsAndQuantization) {
  UtilizationOptions options;
  const std::vector<double> v = GenerateUtilizationSeries(5000, options, 1);
  ASSERT_EQ(v.size(), 5000u);
  for (double x : v) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, options.max_value);
    EXPECT_DOUBLE_EQ(x, std::round(x)) << "quantized to integers";
  }
}

TEST(GeneratorsTest, UtilizationSeriesIsDeterministicPerSeed) {
  UtilizationOptions options;
  EXPECT_EQ(GenerateUtilizationSeries(500, options, 42),
            GenerateUtilizationSeries(500, options, 42));
  EXPECT_NE(GenerateUtilizationSeries(500, options, 42),
            GenerateUtilizationSeries(500, options, 43));
}

TEST(GeneratorsTest, UtilizationSeriesHasDiurnalStructure) {
  UtilizationOptions options;
  options.noise_stddev = 1.0;
  options.burst_probability = 0.0;
  options.shift_probability = 0.0;
  options.diurnal_period = 100;
  const std::vector<double> v = GenerateUtilizationSeries(400, options, 7);
  // Peak of the sinusoid (t=25) should exceed the trough (t=75) clearly.
  EXPECT_GT(v[25], v[75] + options.diurnal_amplitude);
}

TEST(GeneratorsTest, RandomWalkStaysInRange) {
  const std::vector<double> v = GenerateRandomWalk(10000, 100.0, 1000.0, 3);
  for (double x : v) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(GeneratorsTest, PiecewiseConstantHasRequestedShape) {
  const std::vector<double> v =
      GeneratePiecewiseConstant(1000, 5, 100.0, 0.0, 9);
  ASSERT_EQ(v.size(), 1000u);
  // Noise-free: count distinct adjacent transitions; at most num_segments-1.
  int transitions = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] != v[i - 1]) ++transitions;
  }
  EXPECT_LE(transitions, 4);
  EXPECT_GE(transitions, 1);
}

TEST(GeneratorsTest, ZipfValuesAreSkewed) {
  const std::vector<double> v = GenerateZipfValues(20000, 1000, 1.2, 5);
  int64_t ones = 0;
  for (double x : v) {
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 1000.0);
    if (x == 1.0) ++ones;
  }
  // Rank 1 should dominate: far more than the uniform share (20).
  EXPECT_GT(ones, 1000);
}

TEST(GeneratorsTest, DatasetKindRoundTrip) {
  for (DatasetKind kind :
       {DatasetKind::kUtilization, DatasetKind::kRandomWalk,
        DatasetKind::kPiecewiseConstant, DatasetKind::kZipf,
        DatasetKind::kSineMix}) {
    EXPECT_EQ(ParseDatasetKind(DatasetKindName(kind)), kind);
    EXPECT_EQ(GenerateDataset(kind, 64, 1).size(), 64u);
  }
}

TEST(GeneratorsTest, SeriesCollectionShapesAndCloseness) {
  const auto tight = GenerateSeriesCollection(10, 128, 0.95, 77);
  const auto loose = GenerateSeriesCollection(10, 128, 0.05, 77);
  ASSERT_EQ(tight.size(), 10u);
  for (const auto& s : tight) EXPECT_EQ(s.size(), 128u);

  auto mean_pairwise = [](const std::vector<std::vector<double>>& c) {
    double total = 0.0;
    int64_t pairs = 0;
    for (size_t i = 0; i < c.size(); ++i) {
      for (size_t j = i + 1; j < c.size(); ++j) {
        double d = 0.0;
        for (size_t t = 0; t < c[i].size(); ++t) {
          d += (c[i][t] - c[j][t]) * (c[i][t] - c[j][t]);
        }
        total += std::sqrt(d);
        ++pairs;
      }
    }
    return total / static_cast<double>(pairs);
  };
  EXPECT_LT(mean_pairwise(tight), mean_pairwise(loose));
}

TEST(GeneratorsTest, ZeroLengthSeriesAreEmpty) {
  EXPECT_TRUE(GenerateUtilizationSeries(0, UtilizationOptions{}, 1).empty());
  EXPECT_TRUE(GenerateRandomWalk(0, 1.0, 10.0, 1).empty());
  EXPECT_TRUE(GenerateZipfValues(0, 10, 1.0, 1).empty());
}

}  // namespace
}  // namespace streamhist
