#include "src/quantile/gk_summary.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace streamhist {
namespace {

void CheckRankError(const std::vector<double>& inserted, const GKSummary& gk,
                    double epsilon) {
  std::vector<double> sorted = inserted;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  for (double phi : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double q = gk.Quantile(phi);
    // With duplicates the returned value occupies a rank *interval*
    // [first occurrence, last occurrence]; the GK guarantee is that this
    // interval intersects [phi n - eps n, phi n + eps n].
    const double rank_lo = static_cast<double>(
        std::lower_bound(sorted.begin(), sorted.end(), q) - sorted.begin() +
        1);
    const double rank_hi = static_cast<double>(
        std::upper_bound(sorted.begin(), sorted.end(), q) - sorted.begin());
    const double target_lo = phi * n - epsilon * n - 1.5;
    const double target_hi = phi * n + epsilon * n + 1.5;
    EXPECT_TRUE(rank_lo <= target_hi && rank_hi >= target_lo)
        << "phi=" << phi << " q=" << q << " rank=[" << rank_lo << ","
        << rank_hi << "] target=[" << target_lo << "," << target_hi
        << "] n=" << n;
  }
}

TEST(GKSummaryTest, CreateValidatesEpsilon) {
  EXPECT_FALSE(GKSummary::Create(0.0).ok());
  EXPECT_FALSE(GKSummary::Create(1.0).ok());
  EXPECT_TRUE(GKSummary::Create(0.01).ok());
}

TEST(GKSummaryTest, SmallInputIsExactIsh) {
  GKSummary gk = GKSummary::Create(0.1).value();
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) gk.Insert(v);
  EXPECT_EQ(gk.size(), 5);
  EXPECT_DOUBLE_EQ(gk.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(gk.Quantile(1.0), 5.0);
}

class GKRankErrorTest
    : public ::testing::TestWithParam<std::tuple<double, int64_t, int>> {};

TEST_P(GKRankErrorTest, RankErrorWithinEpsilonN) {
  const auto [epsilon, n, order] = GetParam();
  GKSummary gk = GKSummary::Create(epsilon).value();
  Random rng(static_cast<uint64_t>(n) * 31 + static_cast<uint64_t>(order));
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double v = 0.0;
    switch (order) {
      case 0:  // random
        v = rng.UniformDouble(0, 1000);
        break;
      case 1:  // sorted ascending (adversarial for some summaries)
        v = static_cast<double>(i);
        break;
      case 2:  // sorted descending
        v = static_cast<double>(n - i);
        break;
      default:  // heavy duplicates
        v = static_cast<double>(rng.UniformInt(0, 10));
        break;
    }
    values.push_back(v);
    gk.Insert(v);
  }
  CheckRankError(values, gk, epsilon);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GKRankErrorTest,
    ::testing::Combine(::testing::Values(0.2, 0.05, 0.01),
                       ::testing::Values(int64_t{100}, int64_t{2000},
                                         int64_t{20000}),
                       ::testing::Values(0, 1, 2, 3)));

TEST(GKSummaryTest, SpaceStaysSublinear) {
  GKSummary gk = GKSummary::Create(0.01).value();
  Random rng(99);
  for (int i = 0; i < 100000; ++i) gk.Insert(rng.UniformDouble(0, 1));
  // 1/(2 eps) * log(eps n) ~ 50 * ~7: generous cap at a few thousand tuples,
  // far below the 100k inserted values.
  EXPECT_LT(gk.num_tuples(), 5000);
}

TEST(GKSummaryTest, QuantilesAreMonotoneInPhi) {
  GKSummary gk = GKSummary::Create(0.05).value();
  Random rng(123);
  for (int i = 0; i < 5000; ++i) gk.Insert(rng.Gaussian(0, 100));
  double prev = gk.Quantile(0.0);
  for (double phi = 0.05; phi <= 1.0; phi += 0.05) {
    const double q = gk.Quantile(phi);
    EXPECT_GE(q, prev - 1e-9);
    prev = q;
  }
}

}  // namespace
}  // namespace streamhist
