// The resource-governance layer: deadlines and cooperative cancellation
// (util/deadline.h), the process-wide memory governor (util/governor.h),
// count-limited fault arming (util/fault.h), and the degradation ladder
// that ties them together in ManagedStream::BuildWindowHistogram. The core
// claim under test: a BUILD always terminates with a histogram and a
// truthful certificate, no matter which rungs expire or are refused memory.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/agglomerative.h"
#include "src/core/approx_dp.h"
#include "src/core/vopt_dp.h"
#include "src/core/vopt_kernel.h"
#include "src/engine/managed_stream.h"
#include "src/util/deadline.h"
#include "src/util/fault.h"
#include "src/util/governor.h"

namespace streamhist {
namespace {

std::vector<double> TestSeries(int64_t n) {
  std::vector<double> v;
  v.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    v.push_back(std::sin(static_cast<double>(i) * 0.05) * 10.0 +
                (i % 97 == 0 ? 25.0 : 0.0));
  }
  return v;
}

// Every test starts and ends with a clean global governor + fault registry.
class GovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    governor::SetBudgetForTest(0);
  }
  void TearDown() override {
    fault::DisarmAll();
    governor::SetBudgetForTest(0);
  }
};

// ---------------------------------------------------------------------------
// Deadline / CancelToken / ExecContext

TEST_F(GovernorTest, InfiniteDeadlineNeverExpires) {
  const Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), int64_t{1} << 40);
}

TEST_F(GovernorTest, NonPositiveDeadlineIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-100).Expired());
  EXPECT_EQ(Deadline::AfterMillis(-100).RemainingMillis(), 0);
}

TEST_F(GovernorTest, GenerousDeadlineNotExpiredImmediately) {
  const Deadline d = Deadline::AfterMillis(60 * 1000);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 0);
  EXPECT_LE(d.RemainingMillis(), 60 * 1000);
}

TEST_F(GovernorTest, ExecContextLatchesCancellation) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.Cancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.ShouldStop());  // latched, stays stopped
}

TEST_F(GovernorTest, ExecContextLatchesExpiredDeadline) {
  ExecContext ctx(Deadline::AfterMillis(0));
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.ShouldStop());
}

TEST_F(GovernorTest, DeadlineExpireFaultForcesStopWithoutWallClock) {
  // The chaos hook: an infinite deadline still reports expiry when the
  // fault point fires, and the answer latches.
  ExecContext ctx;
  fault::Arm("deadline.expire", 1);
  EXPECT_TRUE(ctx.ShouldStop());
  fault::DisarmAll();
  EXPECT_TRUE(ctx.ShouldStop());  // latched even after disarm
  // A fresh context is unaffected once the budget is spent.
  ExecContext fresh;
  EXPECT_FALSE(fresh.ShouldStop());
}

// ---------------------------------------------------------------------------
// Memory governor

TEST_F(GovernorTest, TryChargeRespectsBudget) {
  const int64_t base = governor::Used();
  governor::SetBudgetForTest(base + 1000);
  EXPECT_TRUE(governor::TryCharge(600));
  EXPECT_FALSE(governor::TryCharge(600));  // would exceed the budget
  EXPECT_EQ(governor::Used(), base + 600);
  governor::Release(600);
  EXPECT_TRUE(governor::TryCharge(1000));  // exactly at the budget is fine
  governor::Release(1000);
  EXPECT_EQ(governor::Used(), base);
}

TEST_F(GovernorTest, UnlimitedBudgetAdmitsEverythingNonNegative) {
  EXPECT_TRUE(governor::TryCharge(int64_t{1} << 40));
  governor::Release(int64_t{1} << 40);
  EXPECT_FALSE(governor::TryCharge(-1));  // negative is always refused
}

TEST_F(GovernorTest, OomFaultRefusesCharge) {
  fault::ScopedFault oom("governor.oom");
  const int64_t base = governor::Used();
  EXPECT_FALSE(governor::TryCharge(16));
  EXPECT_EQ(governor::Used(), base);  // refusal charges nothing
  EXPECT_GE(fault::TriggerCount("governor.oom"), 1);
}

TEST_F(GovernorTest, AdjustChargeIsUnconditional) {
  // Existing state must stay accounted even past the budget: admission is
  // TryCharge's job, not AdjustCharge's.
  const int64_t base = governor::Used();
  governor::SetBudgetForTest(base + 10);
  governor::AdjustCharge(500);
  EXPECT_EQ(governor::Used(), base + 500);
  governor::AdjustCharge(-500);
  EXPECT_EQ(governor::Used(), base);
}

TEST_F(GovernorTest, PeakTracksHighWaterMark) {
  const int64_t before = governor::Peak();
  governor::AdjustCharge(1 << 20);
  EXPECT_GE(governor::Peak(), governor::Used());
  EXPECT_GE(governor::Peak(), before);
  governor::AdjustCharge(-(1 << 20));
  EXPECT_GE(governor::Peak(), governor::Used() + (1 << 20));
}

TEST_F(GovernorTest, ScopedChargeReleasesOnDestruction) {
  const int64_t base = governor::Used();
  {
    governor::ScopedCharge charge(512);
    EXPECT_TRUE(charge.ok());
    EXPECT_EQ(governor::Used(), base + 512);
  }
  EXPECT_EQ(governor::Used(), base);
  governor::SetBudgetForTest(base + 16);
  {
    governor::ScopedCharge refused(512);
    EXPECT_FALSE(refused.ok());
    EXPECT_EQ(governor::Used(), base);  // nothing charged, nothing leaked
  }
  EXPECT_EQ(governor::Used(), base);
}

TEST_F(GovernorTest, ParseByteSizeHandlesSuffixes) {
  EXPECT_EQ(governor::ParseByteSize("512"), 512);
  EXPECT_EQ(governor::ParseByteSize("64K"), 64 * 1024);
  EXPECT_EQ(governor::ParseByteSize("16M"), 16 * 1024 * 1024);
  EXPECT_EQ(governor::ParseByteSize("2G"), int64_t{2} * 1024 * 1024 * 1024);
  EXPECT_EQ(governor::ParseByteSize("0"), 0);
  EXPECT_LT(governor::ParseByteSize(""), 0);
  EXPECT_LT(governor::ParseByteSize("abc"), 0);
  EXPECT_LT(governor::ParseByteSize("12T"), 0);   // unknown suffix
  EXPECT_LT(governor::ParseByteSize("-5"), 0);    // no negative budgets
  EXPECT_LT(governor::ParseByteSize("99999999999999999999"), 0);  // overflow
}

TEST_F(GovernorTest, FormatBytesIsHumanReadable) {
  EXPECT_EQ(governor::FormatBytes(0), "unlimited");
  EXPECT_EQ(governor::FormatBytes(-3), "unlimited");
  EXPECT_NE(governor::FormatBytes(1 << 20).find("MiB"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Count-limited fault arming

TEST_F(GovernorTest, FiniteFireBudgetSelfDisarms) {
  fault::Arm("scratch.point", 2);
  EXPECT_TRUE(fault::Triggered("scratch.point"));
  EXPECT_TRUE(fault::Triggered("scratch.point"));
  EXPECT_FALSE(fault::Triggered("scratch.point"));  // budget spent
  EXPECT_EQ(fault::TriggerCount("scratch.point"), 2);  // count survives
  EXPECT_TRUE(fault::Armed().empty());
}

TEST_F(GovernorTest, RearmingResetsTheBudget) {
  fault::Arm("scratch.point", 1);
  EXPECT_TRUE(fault::Triggered("scratch.point"));
  EXPECT_FALSE(fault::Triggered("scratch.point"));
  fault::Arm("scratch.point", 1);
  EXPECT_TRUE(fault::Triggered("scratch.point"));
}

TEST_F(GovernorTest, ArmRejectsNonPositiveFiniteBudget) {
  fault::Arm("scratch.point", 0);
  EXPECT_FALSE(fault::Triggered("scratch.point"));
  fault::Arm("scratch.point", -7);
  EXPECT_FALSE(fault::Triggered("scratch.point"));
}

TEST_F(GovernorTest, ArmFromSpecParsesFireBudgets) {
  fault::ArmFromSpec("governor.oom:2, deadline.expire");
  EXPECT_TRUE(fault::Triggered("governor.oom"));
  EXPECT_TRUE(fault::Triggered("governor.oom"));
  EXPECT_FALSE(fault::Triggered("governor.oom"));  // finite budget spent
  EXPECT_TRUE(fault::Triggered("deadline.expire"));
  EXPECT_TRUE(fault::Triggered("deadline.expire"));  // unlimited
}

TEST_F(GovernorTest, ArmFromSpecStillArmsUnknownNames) {
  // Unknown names warn on stderr (not asserted here) but must still arm so
  // tests can use scratch points.
  fault::ArmFromSpec("totally.bogus:1");
  EXPECT_TRUE(fault::Triggered("totally.bogus"));
}

TEST_F(GovernorTest, KnownPointsIsSortedAndCompletePerHeaderDoc) {
  const std::vector<std::string> known = fault::KnownPoints();
  EXPECT_TRUE(std::is_sorted(known.begin(), known.end()));
  for (const char* p :
       {"deadline.expire", "governor.oom", "fileio.fsync.transient"}) {
    EXPECT_TRUE(std::binary_search(known.begin(), known.end(), std::string(p)))
        << p;
  }
}

// ---------------------------------------------------------------------------
// Cancellable DP kernels: bit-identical when the context never fires,
// Status::Cancelled when it does.

TEST_F(GovernorTest, CancellableExactDpMatchesPlainBuild) {
  const std::vector<double> data = TestSeries(400);
  const OptimalHistogramResult plain = BuildVOptimalHistogram(data, 8);
  ExecContext ctx;
  const auto cancellable = BuildVOptimalHistogramCancellable(data, 8, ctx);
  ASSERT_TRUE(cancellable.ok()) << cancellable.status();
  EXPECT_EQ(cancellable->error, plain.error);
  EXPECT_EQ(cancellable->histogram.ToString(), plain.histogram.ToString());
}

TEST_F(GovernorTest, CancellableApproxDpMatchesPlainBuild) {
  const std::vector<double> data = TestSeries(400);
  const ApproxHistogramResult plain =
      BuildApproxVOptimalHistogram(data, 8, 0.1);
  ExecContext ctx;
  const auto cancellable =
      BuildApproxVOptimalHistogramCancellable(data, 8, 0.1, ctx);
  ASSERT_TRUE(cancellable.ok()) << cancellable.status();
  EXPECT_EQ(cancellable->sse, plain.sse);
  EXPECT_EQ(cancellable->bound_factor, plain.bound_factor);
  EXPECT_EQ(cancellable->histogram.ToString(), plain.histogram.ToString());
}

TEST_F(GovernorTest, CancelledContextAbandonsBothDps) {
  const std::vector<double> data = TestSeries(400);
  ExecContext ctx;
  ctx.Cancel();
  const auto exact = BuildVOptimalHistogramCancellable(data, 8, ctx);
  ASSERT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kCancelled);
  const auto approx = BuildApproxVOptimalHistogramCancellable(data, 8, 0.1, ctx);
  ASSERT_FALSE(approx.ok());
  EXPECT_EQ(approx.status().code(), StatusCode::kCancelled);
}

TEST_F(GovernorTest, CancellableAgglomerativeExtractMatchesPlain) {
  ApproxHistogramOptions options;
  options.num_buckets = 8;
  options.epsilon = 0.1;
  AgglomerativeHistogram builder =
      AgglomerativeHistogram::Create(options).value();
  for (double v : TestSeries(2000)) builder.Append(v);
  ExecContext ctx;
  const auto cancellable = builder.ExtractCancellable(ctx);
  ASSERT_TRUE(cancellable.ok()) << cancellable.status();
  EXPECT_EQ(cancellable->ToString(), builder.Extract().ToString());

  ExecContext cancelled;
  cancelled.Cancel();
  const auto abandoned = builder.ExtractCancellable(cancelled);
  ASSERT_FALSE(abandoned.ok());
  EXPECT_EQ(abandoned.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// The degradation ladder

ManagedStream MakeLadderStream(int64_t window, int64_t buckets) {
  StreamConfig config;
  config.window_size = window;
  config.num_buckets = buckets;
  ManagedStream stream = ManagedStream::Create(config).value();
  stream.AppendBatch(TestSeries(window));
  return stream;
}

TEST_F(GovernorTest, NoDeadlineBuildMatchesFirstRungExactly) {
  ManagedStream stream = MakeLadderStream(512, 8);
  const WindowBuildReport report = stream.BuildWindowHistogram();
  EXPECT_EQ(report.rung, BuildRung::kExact);
  EXPECT_FALSE(report.degradation.degraded);
  ASSERT_EQ(report.degradation.attempts.size(), 1u);
  EXPECT_TRUE(report.degradation.attempts[0].completed);
  EXPECT_EQ(report.bound_factor, 1.0);
  EXPECT_EQ(stream.degraded_builds(), 0);
  // Identical to the raw exact DP over the same contents.
  const OptimalHistogramResult plain =
      BuildVOptimalHistogram(TestSeries(512), 8);
  EXPECT_EQ(report.sse, plain.error);
  EXPECT_EQ(report.histogram.ToString(), plain.histogram.ToString());
}

TEST_F(GovernorTest, SingleExpiryDegradesExactToTightestApprox) {
  ManagedStream stream = MakeLadderStream(512, 8);
  fault::Arm("deadline.expire", 1);  // only the exact rung sees expiry
  const WindowBuildReport report = stream.BuildWindowHistogram();
  EXPECT_EQ(report.rung, BuildRung::kApprox);
  EXPECT_EQ(report.delta, 0.01);
  EXPECT_TRUE(report.degradation.degraded);
  ASSERT_EQ(report.degradation.attempts.size(), 2u);
  EXPECT_FALSE(report.degradation.attempts[0].completed);
  EXPECT_EQ(report.degradation.attempts[0].rung, BuildRung::kExact);
  EXPECT_FALSE(report.degradation.attempts[0].reason.empty());
  EXPECT_TRUE(report.degradation.attempts[1].completed);
  // The approx rung's certificate.
  EXPECT_GE(report.bound_factor, 1.0);
  EXPECT_LE(report.bound_factor, std::pow(1.01, 7) + 1e-12);
  EXPECT_EQ(stream.degraded_builds(), 1);
}

TEST_F(GovernorTest, PersistentExpiryFallsAllTheWayToSnapshot) {
  ManagedStream stream = MakeLadderStream(512, 8);
  fault::ScopedFault expire("deadline.expire");  // every rung sees expiry
  const WindowBuildReport report = stream.BuildWindowHistogram();
  EXPECT_EQ(report.rung, BuildRung::kSnapshot);
  EXPECT_TRUE(report.degradation.degraded);
  // exact + three approx rungs abandoned, snapshot completed.
  ASSERT_EQ(report.degradation.attempts.size(), 5u);
  for (size_t i = 0; i + 1 < report.degradation.attempts.size(); ++i) {
    EXPECT_FALSE(report.degradation.attempts[i].completed) << i;
    EXPECT_FALSE(report.degradation.attempts[i].reason.empty()) << i;
  }
  EXPECT_TRUE(report.degradation.attempts.back().completed);
  // The maintained snapshot still carries its certificate and real buckets.
  EXPECT_GT(report.histogram.num_buckets(), 0);
  EXPECT_EQ(report.bound_factor, 1.0 + stream.config().epsilon);
  EXPECT_GE(report.sse, 0.0);
  EXPECT_EQ(stream.degraded_builds(), 1);
}

TEST_F(GovernorTest, OomShedsExactDpToApproxPath) {
  ManagedStream stream = MakeLadderStream(512, 8);
  fault::Arm("governor.oom", 1);  // only the exact rung's scratch is refused
  const WindowBuildReport report = stream.BuildWindowHistogram();
  EXPECT_EQ(report.rung, BuildRung::kApprox);
  EXPECT_EQ(report.delta, 0.01);
  ASSERT_EQ(report.degradation.attempts.size(), 2u);
  EXPECT_NE(report.degradation.attempts[0].reason.find("memory governor"),
            std::string::npos);
  EXPECT_EQ(stream.degraded_builds(), 1);
}

TEST_F(GovernorTest, PersistentOomFallsToSnapshot) {
  ManagedStream stream = MakeLadderStream(512, 8);
  fault::ScopedFault oom("governor.oom");
  const WindowBuildReport report = stream.BuildWindowHistogram();
  EXPECT_EQ(report.rung, BuildRung::kSnapshot);
  ASSERT_EQ(report.degradation.attempts.size(), 5u);
  EXPECT_GT(report.histogram.num_buckets(), 0);
  EXPECT_EQ(report.bound_factor, 1.0 + stream.config().epsilon);
}

TEST_F(GovernorTest, RealBudgetShedsExactScratchButAdmitsApprox) {
  // No faults: an actual byte budget between the approx and exact scratch
  // sizes makes the governor itself pick the rung.
  ManagedStream stream = MakeLadderStream(512, 8);
  const int64_t n = 512;
  const int64_t exact_scratch = vopt_internal::DpScratchBytes(n, 8);
  const int64_t approx_scratch = 3 * (n + 1) * 16 + n * 8;
  ASSERT_GT(exact_scratch, approx_scratch);
  governor::SetBudgetForTest(governor::Used() + exact_scratch - 1);
  const WindowBuildReport report = stream.BuildWindowHistogram();
  EXPECT_EQ(report.rung, BuildRung::kApprox);
  EXPECT_EQ(report.delta, 0.01);
  EXPECT_NE(report.degradation.attempts[0].reason.find("memory governor"),
            std::string::npos);
}

TEST_F(GovernorTest, EverythingHostileStillTerminatesWithCertificate) {
  // Deadline expiry AND memory refusal on every rung: the acceptance bar —
  // BUILD always terminates with a histogram, a certified bound, and a
  // truthful report.
  ManagedStream stream = MakeLadderStream(256, 8);
  fault::ScopedFault expire("deadline.expire");
  fault::ScopedFault oom("governor.oom");
  const WindowBuildReport report = stream.BuildWindowHistogram();
  EXPECT_EQ(report.rung, BuildRung::kSnapshot);
  EXPECT_GT(report.histogram.num_buckets(), 0);
  EXPECT_EQ(report.bound_factor, 1.0 + stream.config().epsilon);
  EXPECT_TRUE(report.degradation.degraded);
  EXPECT_TRUE(report.degradation.attempts.back().completed);
  const std::string trace = report.degradation.ToString();
  EXPECT_NE(trace.find("snapshot"), std::string::npos);
}

TEST_F(GovernorTest, ApproxModeLadderSkipsTighterDeltas) {
  // A stream configured at delta=0.1 must not "degrade" to the tighter 0.01.
  StreamConfig config;
  config.window_size = 256;
  config.num_buckets = 8;
  config.build_mode = WindowBuildMode::kApprox;
  config.build_delta = 0.1;
  ManagedStream stream = ManagedStream::Create(config).value();
  stream.AppendBatch(TestSeries(256));
  fault::Arm("deadline.expire", 1);  // first (configured) rung expires
  const WindowBuildReport report = stream.BuildWindowHistogram();
  EXPECT_EQ(report.rung, BuildRung::kApprox);
  EXPECT_EQ(report.delta, 0.5);  // the next *looser* standard slack
  EXPECT_TRUE(report.degradation.degraded);
}

TEST_F(GovernorTest, EmptyWindowBuildTerminatesUnderFaults) {
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 4;
  ManagedStream stream = ManagedStream::Create(config).value();
  fault::ScopedFault expire("deadline.expire");
  fault::ScopedFault oom("governor.oom");
  const WindowBuildReport report = stream.BuildWindowHistogram();
  EXPECT_EQ(report.rung, BuildRung::kSnapshot);
  EXPECT_EQ(report.points, 0);
  EXPECT_EQ(report.histogram.num_buckets(), 0);
  EXPECT_EQ(report.sse, 0.0);
}

TEST_F(GovernorTest, DegradedBuildsAccumulateAndDescribeReportsThem) {
  ManagedStream stream = MakeLadderStream(256, 4);
  {
    fault::ScopedFault expire("deadline.expire");
    (void)stream.BuildWindowHistogram();
    (void)stream.BuildWindowHistogram();
  }
  EXPECT_EQ(stream.degraded_builds(), 2);
  const std::string describe = stream.Describe();
  EXPECT_NE(describe.find("degraded builds=2"), std::string::npos);
  EXPECT_NE(describe.find("last build"), std::string::npos);
  // A clean build afterwards does not increment the counter.
  (void)stream.BuildWindowHistogram();
  EXPECT_EQ(stream.degraded_builds(), 2);
}

// ---------------------------------------------------------------------------
// Stream-level governor accounting

TEST_F(GovernorTest, StreamsChargeAndReleaseTheirFootprint) {
  const int64_t base = governor::Used();
  {
    ManagedStream stream = MakeLadderStream(1024, 8);
    EXPECT_GT(governor::Used(), base);
    EXPECT_GE(governor::Used() - base, stream.MemoryBytes());
  }
  EXPECT_EQ(governor::Used(), base);  // destruction releases everything
}

TEST_F(GovernorTest, MoveTransfersTheCharge) {
  const int64_t base = governor::Used();
  {
    ManagedStream a = MakeLadderStream(512, 8);
    const int64_t charged = governor::Used() - base;
    ManagedStream b = std::move(a);
    EXPECT_EQ(governor::Used() - base, charged);  // no double count
    ManagedStream c = MakeLadderStream(64, 4);
    c = std::move(b);  // assignment releases c's own charge first
    EXPECT_EQ(governor::Used() - base, charged);
  }
  EXPECT_EQ(governor::Used(), base);
}

TEST_F(GovernorTest, EstimateFootprintScalesWithWindow) {
  StreamConfig small;
  small.window_size = 64;
  StreamConfig large;
  large.window_size = 1 << 16;
  EXPECT_GT(ManagedStream::EstimateFootprintBytes(large),
            ManagedStream::EstimateFootprintBytes(small));
  EXPECT_GT(ManagedStream::EstimateFootprintBytes(small), 0);
}

}  // namespace
}  // namespace streamhist
