#include "src/wavelet/haar.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace streamhist {
namespace {

TEST(HaarTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(2), 2);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024);
}

TEST(HaarTest, DecomposeConstantSignal) {
  const std::vector<double> v(8, 5.0);
  const std::vector<double> c = HaarDecompose(v);
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  for (size_t i = 1; i < 8; ++i) EXPECT_DOUBLE_EQ(c[i], 0.0);
}

TEST(HaarTest, KnownSmallDecomposition) {
  // Classic example: [2, 2, 0, 2, 3, 5, 4, 4].
  const std::vector<double> v{2, 2, 0, 2, 3, 5, 4, 4};
  const std::vector<double> c = HaarDecompose(v);
  EXPECT_DOUBLE_EQ(c[0], 2.75);              // overall average
  EXPECT_DOUBLE_EQ(c[1], (1.5 - 4.0) / 2);   // top detail: -1.25
  EXPECT_DOUBLE_EQ(c[2], (2.0 - 1.0) / 2);   // level-1 left: 0.5
  EXPECT_DOUBLE_EQ(c[3], (4.0 - 4.0) / 2);   // level-1 right: 0
  EXPECT_DOUBLE_EQ(c[4], 0.0);
  EXPECT_DOUBLE_EQ(c[5], -1.0);
  EXPECT_DOUBLE_EQ(c[6], -1.0);
  EXPECT_DOUBLE_EQ(c[7], 0.0);
}

class HaarRoundTripTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(HaarRoundTripTest, ReconstructInvertsDecompose) {
  const int64_t n = GetParam();
  Random rng(static_cast<uint64_t>(n));
  std::vector<double> v;
  for (int64_t i = 0; i < n; ++i) v.push_back(rng.UniformDouble(-100, 100));
  const std::vector<double> back = HaarReconstruct(HaarDecompose(v));
  ASSERT_EQ(back.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(back[i], v[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, HaarRoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 1024));

TEST(HaarTest, SupportsPartitionTheDomainPerLevel) {
  const int64_t size = 16;
  // Nodes 2^l .. 2^{l+1}-1 partition [0, size) at each level l.
  for (int64_t first = 1; first < size; first *= 2) {
    int64_t expected_begin = 0;
    for (int64_t i = first; i < 2 * first; ++i) {
      const HaarSupport s = HaarSupportOf(i, size);
      EXPECT_EQ(s.begin, expected_begin);
      EXPECT_EQ(s.mid - s.begin, s.end - s.mid);  // halves are equal
      expected_begin = s.end;
    }
    EXPECT_EQ(expected_begin, size);
  }
}

TEST(HaarTest, AverageSupportCoversEverything) {
  const HaarSupport s = HaarSupportOf(0, 32);
  EXPECT_EQ(s.begin, 0);
  EXPECT_EQ(s.mid, 32);
  EXPECT_EQ(s.end, 32);
}

TEST(HaarTest, ParsevalEnergyIdentity) {
  // Sum of squared values equals the sum of squared L2 weights.
  Random rng(77);
  std::vector<double> v;
  for (int i = 0; i < 64; ++i) v.push_back(rng.Gaussian(0, 3));
  const std::vector<double> c = HaarDecompose(v);
  double signal_energy = 0.0;
  for (double x : v) signal_energy += x * x;
  double coeff_energy = 0.0;
  for (size_t i = 0; i < c.size(); ++i) {
    const double w = HaarL2Weight(static_cast<int64_t>(i), c[i], 64);
    coeff_energy += w * w;
  }
  EXPECT_NEAR(signal_energy, coeff_energy, 1e-6);
}

}  // namespace
}  // namespace streamhist
