#include "src/core/heuristics.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

TEST(EquiWidthTest, EqualBucketsOnDivisibleDomain) {
  const std::vector<double> data(12, 1.0);
  Histogram h = BuildEquiWidthHistogram(data, 4);
  ASSERT_EQ(h.num_buckets(), 4);
  for (const Bucket& b : h.buckets()) EXPECT_EQ(b.width(), 3);
}

TEST(EquiWidthTest, RemainderGoesSomewhere) {
  const std::vector<double> data(10, 1.0);
  Histogram h = BuildEquiWidthHistogram(data, 3);
  ASSERT_EQ(h.num_buckets(), 3);
  EXPECT_EQ(h.domain_size(), 10);
  EXPECT_TRUE(h.Validate().ok());
}

TEST(EquiWidthTest, MoreBucketsThanPoints) {
  const std::vector<double> data{1, 2};
  Histogram h = BuildEquiWidthHistogram(data, 5);
  EXPECT_EQ(h.num_buckets(), 2);
  EXPECT_DOUBLE_EQ(h.SseAgainst(data), 0.0);
}

TEST(MaxDiffTest, BoundariesAtLargestJumps) {
  const std::vector<double> data{0, 0, 0, 100, 100, 100, 50, 50};
  Histogram h = BuildMaxDiffHistogram(data, 3);
  ASSERT_EQ(h.num_buckets(), 3);
  EXPECT_EQ(h.buckets()[0].end, 3);
  EXPECT_EQ(h.buckets()[1].end, 6);
  EXPECT_DOUBLE_EQ(h.SseAgainst(data), 0.0);
}

TEST(MaxDiffTest, ConstantDataGivesSingleEffectiveValue) {
  const std::vector<double> data(20, 7.0);
  Histogram h = BuildMaxDiffHistogram(data, 4);
  EXPECT_DOUBLE_EQ(h.SseAgainst(data), 0.0);
  EXPECT_TRUE(h.Validate().ok());
}

TEST(GreedyMergeTest, RecoversPiecewiseConstantExactly) {
  std::vector<double> data;
  for (int i = 0; i < 10; ++i) data.push_back(3);
  for (int i = 0; i < 5; ++i) data.push_back(-4);
  for (int i = 0; i < 7; ++i) data.push_back(9);
  Histogram h = BuildGreedyMergeHistogram(data, 3);
  ASSERT_EQ(h.num_buckets(), 3);
  EXPECT_DOUBLE_EQ(h.SseAgainst(data), 0.0);
}

TEST(GreedyMergeTest, NeverBeatsOptimal) {
  Random rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> data;
    for (int i = 0; i < 60; ++i) data.push_back(rng.UniformInt(0, 40));
    const double opt = OptimalSse(data, 5);
    Histogram h = BuildGreedyMergeHistogram(data, 5);
    EXPECT_GE(h.SseAgainst(data) + 1e-9, opt);
    EXPECT_LE(h.num_buckets(), 5);
  }
}

TEST(StreamingMergeTest, SmallStreamIsExact) {
  StreamingMergeHistogram s(4);
  for (double v : {1.0, 2.0, 3.0}) s.Append(v);
  Histogram h = s.Extract();
  EXPECT_DOUBLE_EQ(h.SseAgainst(std::vector<double>{1, 2, 3}), 0.0);
}

TEST(StreamingMergeTest, DomainTracksStreamLength) {
  StreamingMergeHistogram s(4);
  Random rng(9);
  for (int i = 1; i <= 500; ++i) {
    s.Append(rng.UniformInt(0, 100));
    if (i % 97 == 0) {
      Histogram h = s.Extract();
      EXPECT_EQ(h.domain_size(), i);
      EXPECT_LE(h.num_buckets(), 4);
      EXPECT_TRUE(h.Validate().ok());
    }
  }
}

TEST(StreamingMergeTest, PiecewiseConstantNearExact) {
  StreamingMergeHistogram s(4);
  std::vector<double> data;
  for (int seg = 0; seg < 4; ++seg) {
    for (int i = 0; i < 50; ++i) data.push_back(seg * 10.0);
  }
  for (double v : data) s.Append(v);
  Histogram h = s.Extract();
  EXPECT_DOUBLE_EQ(h.SseAgainst(data), 0.0);
}

TEST(HeuristicsComparisonTest, VOptimalDominatesAllHeuristicsInSse) {
  // The reason the paper targets V-optimal: on shift-heavy data the optimal
  // boundaries beat fixed grids. Sanity-check the ordering OPT <= each
  // heuristic on several datasets.
  for (uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<double> data =
        GenerateDataset(DatasetKind::kPiecewiseConstant, 256, seed);
    const double opt = OptimalSse(data, 8);
    EXPECT_LE(opt, BuildEquiWidthHistogram(data, 8).SseAgainst(data) + 1e-6);
    EXPECT_LE(opt, BuildMaxDiffHistogram(data, 8).SseAgainst(data) + 1e-6);
    EXPECT_LE(opt, BuildGreedyMergeHistogram(data, 8).SseAgainst(data) + 1e-6);
  }
}

}  // namespace
}  // namespace streamhist
