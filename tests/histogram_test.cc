#include "src/core/histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace streamhist {
namespace {

Histogram MakeSimple() {
  // [0,3)=2.0 [3,5)=10.0 [5,10)=-1.0
  return Histogram::FromBucketsUnchecked(
      {Bucket{0, 3, 2.0}, Bucket{3, 5, 10.0}, Bucket{5, 10, -1.0}});
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.num_buckets(), 0);
  EXPECT_EQ(h.domain_size(), 0);
  EXPECT_TRUE(h.Validate().ok());
}

TEST(HistogramTest, MakeRejectsGap) {
  auto r = Histogram::Make({Bucket{0, 3, 1.0}, Bucket{4, 6, 2.0}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HistogramTest, MakeRejectsEmptyBucket) {
  auto r = Histogram::Make({Bucket{0, 0, 1.0}});
  EXPECT_FALSE(r.ok());
}

TEST(HistogramTest, MakeRejectsNonZeroStart) {
  auto r = Histogram::Make({Bucket{1, 3, 1.0}});
  EXPECT_FALSE(r.ok());
}

TEST(HistogramTest, MakeAcceptsContiguous) {
  auto r = Histogram::Make({Bucket{0, 2, 1.0}, Bucket{2, 5, 2.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_buckets(), 2);
  EXPECT_EQ(r.value().domain_size(), 5);
}

TEST(HistogramTest, PointEstimates) {
  Histogram h = MakeSimple();
  EXPECT_DOUBLE_EQ(h.Estimate(0), 2.0);
  EXPECT_DOUBLE_EQ(h.Estimate(2), 2.0);
  EXPECT_DOUBLE_EQ(h.Estimate(3), 10.0);
  EXPECT_DOUBLE_EQ(h.Estimate(4), 10.0);
  EXPECT_DOUBLE_EQ(h.Estimate(5), -1.0);
  EXPECT_DOUBLE_EQ(h.Estimate(9), -1.0);
}

TEST(HistogramTest, RangeSumWholeDomain) {
  Histogram h = MakeSimple();
  EXPECT_DOUBLE_EQ(h.RangeSum(0, 10), 3 * 2.0 + 2 * 10.0 + 5 * -1.0);
}

TEST(HistogramTest, RangeSumPartialBuckets) {
  Histogram h = MakeSimple();
  // [2, 4): one point of bucket 0 plus one point of bucket 1.
  EXPECT_DOUBLE_EQ(h.RangeSum(2, 4), 2.0 + 10.0);
  // [1, 1): empty.
  EXPECT_DOUBLE_EQ(h.RangeSum(1, 1), 0.0);
  // [6, 9): interior of the last bucket.
  EXPECT_DOUBLE_EQ(h.RangeSum(6, 9), -3.0);
}

TEST(HistogramTest, RangeSumMatchesReconstruction) {
  Histogram h = MakeSimple();
  const std::vector<double> approx = h.Reconstruct();
  Random rng(5);
  for (int t = 0; t < 200; ++t) {
    const int64_t lo = rng.UniformInt(0, 10);
    const int64_t hi = rng.UniformInt(lo, 10);
    double expected = 0.0;
    for (int64_t i = lo; i < hi; ++i) expected += approx[static_cast<size_t>(i)];
    EXPECT_NEAR(h.RangeSum(lo, hi), expected, 1e-9);
  }
}

TEST(HistogramTest, RangeAverage) {
  Histogram h = MakeSimple();
  EXPECT_DOUBLE_EQ(h.RangeAverage(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(h.RangeAverage(2, 4), 6.0);
}

TEST(HistogramTest, SseAgainstExactOnConstantData) {
  const std::vector<double> data(10, 4.0);
  Histogram h = Histogram::FromBucketsUnchecked({Bucket{0, 10, 4.0}});
  EXPECT_DOUBLE_EQ(h.SseAgainst(data), 0.0);
}

TEST(HistogramTest, SseAgainstKnownValue) {
  const std::vector<double> data{1.0, 3.0};  // mean 2, SSE 2
  Histogram h = Histogram::FromBucketsUnchecked({Bucket{0, 2, 2.0}});
  EXPECT_DOUBLE_EQ(h.SseAgainst(data), 2.0);
}

TEST(HistogramTest, FromBoundariesComputesMeans) {
  const std::vector<double> data{1, 1, 5, 5, 5, 9};
  Histogram h = HistogramFromBoundaries(data, {0, 2, 5, 6});
  ASSERT_EQ(h.num_buckets(), 3);
  EXPECT_DOUBLE_EQ(h.buckets()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(h.buckets()[1].value, 5.0);
  EXPECT_DOUBLE_EQ(h.buckets()[2].value, 9.0);
  EXPECT_DOUBLE_EQ(h.SseAgainst(data), 0.0);
}

TEST(HistogramTest, ToStringRendersBuckets) {
  Histogram h = Histogram::FromBucketsUnchecked({Bucket{0, 2, 1.5}});
  EXPECT_EQ(h.ToString(), "[0,2)=1.5");
}

TEST(HistogramTest, EqualityOperator) {
  EXPECT_EQ(MakeSimple(), MakeSimple());
  EXPECT_FALSE(MakeSimple() ==
               Histogram::FromBucketsUnchecked({Bucket{0, 10, 0.0}}));
}

}  // namespace
}  // namespace streamhist
