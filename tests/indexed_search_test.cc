#include "src/timeseries/indexed_search.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/timeseries/distance.h"
#include "src/timeseries/paa.h"
#include "src/timeseries/rtree.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

std::vector<std::vector<double>> RandomPoints(int64_t n, int64_t dims,
                                              uint64_t seed) {
  Random rng(seed);
  std::vector<std::vector<double>> points;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> p;
    for (int64_t d = 0; d < dims; ++d) p.push_back(rng.UniformDouble(-50, 50));
    points.push_back(std::move(p));
  }
  return points;
}

double PointDist(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t d = 0; d < a.size(); ++d) s += (a[d] - b[d]) * (a[d] - b[d]);
  return std::sqrt(s);
}

TEST(PaaTest, ConstantSeriesFeature) {
  const std::vector<double> series(16, 3.0);
  const std::vector<double> f = PaaFeatures(series, 4);
  ASSERT_EQ(f.size(), 4u);
  for (double v : f) EXPECT_DOUBLE_EQ(v, 3.0 * 2.0);  // mean * sqrt(4)
}

TEST(PaaTest, UnevenSegmentsCoverEverything) {
  std::vector<double> series(10);
  for (int i = 0; i < 10; ++i) series[static_cast<size_t>(i)] = i;
  const std::vector<double> f = PaaFeatures(series, 3);
  ASSERT_EQ(f.size(), 3u);
  // Segments: [0,3), [3,6), [6,10).
  EXPECT_NEAR(f[0], 1.0 * std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(f[1], 4.0 * std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(f[2], 7.5 * std::sqrt(4.0), 1e-12);
}

TEST(PaaTest, FeatureDistanceLowerBoundsTrueDistance) {
  Random rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 64; ++i) {
      a.push_back(rng.UniformDouble(0, 100));
      b.push_back(rng.UniformDouble(0, 100));
    }
    for (int64_t dims : {1, 4, 16, 64}) {
      const auto fa = PaaFeatures(a, dims);
      const auto fb = PaaFeatures(b, dims);
      EXPECT_LE(PaaSquaredDistance(fa, fb), SquaredEuclidean(a, b) + 1e-6);
    }
  }
}

TEST(PaaTest, FullDimensionalityIsExact) {
  Random rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 32; ++i) {
    a.push_back(rng.Gaussian(0, 10));
    b.push_back(rng.Gaussian(0, 10));
  }
  const auto fa = PaaFeatures(a, 32);
  const auto fb = PaaFeatures(b, 32);
  EXPECT_NEAR(PaaSquaredDistance(fa, fb), SquaredEuclidean(a, b), 1e-9);
}

TEST(RTreeTest, MinDistBasics) {
  const std::vector<double> low{0, 0};
  const std::vector<double> high{2, 2};
  EXPECT_DOUBLE_EQ(RTree::SquaredMinDist(std::vector<double>{1, 1}, low, high),
                   0.0);  // inside
  EXPECT_DOUBLE_EQ(RTree::SquaredMinDist(std::vector<double>{3, 1}, low, high),
                   1.0);  // right of the box
  EXPECT_DOUBLE_EQ(RTree::SquaredMinDist(std::vector<double>{4, 5}, low, high),
                   4.0 + 9.0);  // corner
}

TEST(RTreeTest, BallQueryMatchesBruteForce) {
  const auto points = RandomPoints(500, 6, 7);
  RTree tree(points);
  Random rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q;
    for (int d = 0; d < 6; ++d) q.push_back(rng.UniformDouble(-60, 60));
    const double radius = rng.UniformDouble(10, 80);

    std::vector<int64_t> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (PointDist(q, points[i]) <= radius) {
        expected.push_back(static_cast<int64_t>(i));
      }
    }
    RTree::SearchStats stats;
    std::vector<int64_t> got = tree.BallQuery(q, radius, &stats);
    std::vector<int64_t> got_sorted = got;
    std::sort(got_sorted.begin(), got_sorted.end());
    EXPECT_EQ(got_sorted, expected);
    EXPECT_GT(stats.nodes_visited, 0);
  }
}

TEST(RTreeTest, BallQueryPrunes) {
  const auto points = RandomPoints(2000, 4, 11);
  RTree tree(points);
  RTree::SearchStats stats;
  // A tiny ball: most of the tree must be pruned.
  tree.BallQuery(points[0], 1.0, &stats);
  EXPECT_LT(stats.points_compared, 600);
  EXPECT_GT(tree.height(), 1);
}

TEST(RTreeTest, KnnMatchesBruteForce) {
  const auto points = RandomPoints(300, 5, 13);
  RTree tree(points);
  Random rng(15);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q;
    for (int d = 0; d < 5; ++d) q.push_back(rng.UniformDouble(-60, 60));
    for (int64_t k : {1, 5, 20}) {
      std::vector<std::pair<double, int64_t>> all;
      for (size_t i = 0; i < points.size(); ++i) {
        all.emplace_back(PointDist(q, points[i]), static_cast<int64_t>(i));
      }
      std::sort(all.begin(), all.end());
      const std::vector<int64_t> got = tree.KnnQuery(q, k);
      ASSERT_EQ(got.size(), static_cast<size_t>(k));
      for (int64_t i = 0; i < k; ++i) {
        EXPECT_NEAR(PointDist(q, points[static_cast<size_t>(got[i])]),
                    all[static_cast<size_t>(i)].first, 1e-9);
      }
    }
  }
}

TEST(RTreeTest, SinglePointTree) {
  RTree tree({{1.0, 2.0}});
  EXPECT_EQ(tree.BallQuery(std::vector<double>{1, 2}, 0.5),
            (std::vector<int64_t>{0}));
  EXPECT_EQ(tree.KnnQuery(std::vector<double>{9, 9}, 1),
            (std::vector<int64_t>{0}));
}

class IndexedSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 150; ++i) {
      collection_.push_back(GeneratePiecewiseConstant(
          128, 10, 50000, 400, 3000 + static_cast<uint64_t>(i)));
    }
    query_ = GeneratePiecewiseConstant(128, 10, 50000, 400, 9999);
  }

  std::vector<std::vector<double>> collection_;
  std::vector<double> query_;
};

TEST_F(IndexedSearchTest, RangeSearchEqualsBruteForce) {
  IndexedSimilaritySearch index(collection_, /*dimensions=*/8);
  std::vector<double> dists;
  for (const auto& s : collection_) dists.push_back(Euclidean(query_, s));
  std::vector<double> sorted = dists;
  std::sort(sorted.begin(), sorted.end());
  for (double radius : {sorted[5] + 1e-6, sorted[30] + 1e-6}) {
    SearchStats stats;
    RTree::SearchStats tstats;
    const auto matches = index.RangeSearch(query_, radius, &stats, &tstats);
    int64_t expected = 0;
    for (double d : dists) {
      if (d <= radius) ++expected;
    }
    EXPECT_EQ(static_cast<int64_t>(matches.size()), expected);
    EXPECT_EQ(stats.answers, expected);
    EXPECT_EQ(stats.candidates, stats.answers + stats.false_positives);
    // The index must refine fewer series than a full scan would.
    EXPECT_LT(stats.candidates, static_cast<int64_t>(collection_.size()));
  }
}

TEST_F(IndexedSearchTest, KnnEqualsBruteForce) {
  IndexedSimilaritySearch index(collection_, 8);
  std::vector<std::pair<double, int64_t>> all;
  for (size_t i = 0; i < collection_.size(); ++i) {
    all.emplace_back(Euclidean(query_, collection_[i]),
                     static_cast<int64_t>(i));
  }
  std::sort(all.begin(), all.end());
  for (int64_t k : {1, 5, 15}) {
    SearchStats stats;
    const auto knn = index.KnnSearch(query_, k, &stats);
    ASSERT_EQ(knn.size(), static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
      EXPECT_NEAR(knn[static_cast<size_t>(i)].distance,
                  all[static_cast<size_t>(i)].first, 1e-9);
    }
    EXPECT_LE(stats.candidates, static_cast<int64_t>(collection_.size()));
  }
}

TEST_F(IndexedSearchTest, MoreDimensionsTightenTheFilter) {
  std::vector<double> dists;
  for (const auto& s : collection_) dists.push_back(Euclidean(query_, s));
  std::sort(dists.begin(), dists.end());
  const double radius = dists[15] + 1e-6;

  int64_t prev_candidates = static_cast<int64_t>(collection_.size()) + 1;
  for (int64_t dims : {2, 8, 32}) {
    IndexedSimilaritySearch index(collection_, dims);
    SearchStats stats;
    index.RangeSearch(query_, radius, &stats);
    EXPECT_LE(stats.candidates, prev_candidates)
        << "dims=" << dims;  // finer features prune at least as well
    prev_candidates = stats.candidates;
  }
}

}  // namespace
}  // namespace streamhist
