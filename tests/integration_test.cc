// End-to-end pipelines mirroring the paper's three application scenarios:
// approximate queries on a sliding-window stream (section 5.1), approximate
// warehouse querying, and similarity search (section 5.2).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

// The umbrella header is compiled here (only here) so it provably stays
// self-contained and exports the full public API.
#include "src/streamhist.h"

namespace streamhist {
namespace {

TEST(IntegrationTest, StreamingRangeSumsStayAccurate) {
  // Stream a utilization trace through a fixed-window histogram; at several
  // checkpoints, random range-sum queries answered from the histogram must
  // track the exact answers, and must beat an equal-budget wavelet synopsis
  // rebuilt from scratch (the paper's Figure 6 comparison in miniature).
  const int64_t window = 256;
  const int64_t buckets = 16;
  const std::vector<double> stream =
      GenerateDataset(DatasetKind::kUtilization, 2048, 7);

  FixedWindowOptions options;
  options.window_size = window;
  options.num_buckets = buckets;
  options.epsilon = 0.1;
  options.rebuild_on_append = false;
  FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();

  Random rng(3);
  double hist_err_total = 0.0;
  double wave_err_total = 0.0;
  int checkpoints = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    fw.Append(stream[i]);
    if (!fw.window().full() || i % 97 != 0) continue;
    const std::vector<double> snapshot = fw.window().ToVector();
    ExactEstimator exact(snapshot);
    const Histogram& h = fw.Extract();
    HistogramEstimator hist(&h);
    // Equal space budget: a bucket stores (boundary, value), a wavelet
    // coefficient stores (index, value) -> B coefficients.
    const WaveletSynopsis w = WaveletSynopsis::Build(snapshot, buckets);
    WaveletEstimator wave(&w);

    const auto queries = GenerateUniformRangeQueries(window, 200, rng);
    const AccuracyReport hist_report = EvaluateRangeSums(exact, hist, queries);
    const AccuracyReport wave_report = EvaluateRangeSums(exact, wave, queries);
    hist_err_total += hist_report.mean_absolute_error;
    wave_err_total += wave_report.mean_absolute_error;
    ++checkpoints;

    // Average query sums are ~window/2 * ~20000; histogram error must be a
    // tiny fraction of that.
    const double typical_sum = exact.RangeSum(0, window) / 2.0;
    EXPECT_LT(hist_report.mean_absolute_error, 0.05 * typical_sum);
  }
  ASSERT_GT(checkpoints, 5);
  // Headline result: the histogram beats the wavelet baseline on average.
  EXPECT_LT(hist_err_total, wave_err_total);
}

TEST(IntegrationTest, WarehousePipelineAgglomerativeVsOptimal) {
  // One-pass agglomerative construction must be accuracy-competitive with
  // the optimal DP on a stored dataset (the paper's warehouse experiment).
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, 1500, 21);
  const int64_t buckets = 24;

  ApproxHistogramOptions options;
  options.num_buckets = buckets;
  options.epsilon = 0.1;
  AgglomerativeHistogram agg = AgglomerativeHistogram::Create(options).value();
  VectorSource source(data);
  while (auto v = source.Next()) agg.Append(*v);
  const Histogram approx = agg.Extract();
  const Histogram optimal = BuildVOptimalHistogram(data, buckets).histogram;

  ExactEstimator exact(data);
  HistogramEstimator approx_est(&approx);
  HistogramEstimator optimal_est(&optimal);
  Random rng(5);
  const auto queries =
      GenerateUniformRangeQueries(static_cast<int64_t>(data.size()), 500, rng);
  const double approx_mae =
      EvaluateRangeSums(exact, approx_est, queries).mean_absolute_error;
  const double optimal_mae =
      EvaluateRangeSums(exact, optimal_est, queries).mean_absolute_error;
  // "Comparable in accuracy": within a small constant factor, never wildly
  // off. (Query error is not the SSE objective, so allow generous slack.)
  EXPECT_LT(approx_mae, 3.0 * optimal_mae + 1e-6);
}

TEST(IntegrationTest, SubsequenceSimilarityPipeline) {
  // Subsequence matching over a long stream: extract sliding windows, index
  // them with histogram representations, and verify filter-and-refine
  // returns exactly the brute-force answers.
  const std::vector<double> series =
      GenerateDataset(DatasetKind::kSineMix, 600, 31);
  const auto windows = ExtractSubsequences(series, 64, 16);
  ASSERT_GT(windows.size(), 10u);

  SimilarityIndex index(windows, 6, MakeFixedWindowBuilder(0.2));
  const std::vector<double>& query = windows[windows.size() / 2];

  SearchStats stats;
  const auto matches = index.RangeSearch(query, 1000.0, &stats);
  // The query window itself must be returned at distance 0.
  ASSERT_FALSE(matches.empty());
  EXPECT_DOUBLE_EQ(matches[0].distance, 0.0);
  EXPECT_EQ(stats.candidates, stats.answers + stats.false_positives);

  // kNN must agree with brute force.
  const auto knn = index.KnnSearch(query, 3, &stats);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_DOUBLE_EQ(knn[0].distance, 0.0);
}

TEST(IntegrationTest, AgglomerativeAndFixedWindowAgreeOnFullWindow) {
  // When the fixed window covers the whole (short) stream, both algorithms
  // solve the same problem; their errors should both be within (1+eps) of
  // optimal and hence within (1+eps) of each other.
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kRandomWalk, 200, 17);
  const int64_t buckets = 6;
  const double epsilon = 0.1;

  ApproxHistogramOptions aopt;
  aopt.num_buckets = buckets;
  aopt.epsilon = epsilon;
  AgglomerativeHistogram agg = AgglomerativeHistogram::Create(aopt).value();

  FixedWindowOptions fopt;
  fopt.window_size = 200;
  fopt.num_buckets = buckets;
  fopt.epsilon = epsilon;
  fopt.rebuild_on_append = false;
  FixedWindowHistogram fw = FixedWindowHistogram::Create(fopt).value();

  for (double v : data) {
    agg.Append(v);
    fw.Append(v);
  }
  const double opt = OptimalSse(data, buckets);
  const double agg_sse = agg.Extract().SseAgainst(data);
  const double fw_sse = fw.Extract().SseAgainst(data);
  EXPECT_LE(agg_sse, (1 + epsilon) * opt + 1e-6);
  EXPECT_LE(fw_sse, (1 + epsilon) * opt + 1e-6);
}

}  // namespace
}  // namespace streamhist
