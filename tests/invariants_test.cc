// Randomized cross-validation of invariants that cut across modules —
// fuzz-flavored checks that no single-module test covers.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/agglomerative.h"
#include "src/core/fixed_window.h"
#include "src/core/histogram_io.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

// The strongest agglomerative property: the guarantee holds at *every*
// prefix of the stream, not just the end.
TEST(InvariantsTest, AgglomerativeGuaranteeHoldsAtEveryPrefix) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Random rng(seed);
    const int64_t n = 60;
    const int64_t buckets = 4;
    const double epsilon = 0.25;
    ApproxHistogramOptions options;
    options.num_buckets = buckets;
    options.epsilon = epsilon;
    AgglomerativeHistogram agg =
        AgglomerativeHistogram::Create(options).value();
    std::vector<double> prefix;
    for (int64_t i = 0; i < n; ++i) {
      const double v = rng.UniformInt(0, 40);
      agg.Append(v);
      prefix.push_back(v);
      const double opt = OptimalSse(prefix, buckets);
      const double approx = agg.Extract().SseAgainst(prefix);
      ASSERT_LE(approx, (1 + epsilon) * opt + 1e-9)
          << "seed " << seed << " prefix " << i + 1;
      ASSERT_GE(approx + 1e-9, opt);
    }
  }
}

// The fixed-window histogram's streamed error must equal the SSE of its own
// extracted histogram, under both cost metrics, at random checkpoints.
TEST(InvariantsTest, StreamedErrorMatchesExtractedCost) {
  for (WindowErrorMetric metric :
       {WindowErrorMetric::kSse, WindowErrorMetric::kMaxAbs}) {
    FixedWindowOptions options;
    options.window_size = 48;
    options.num_buckets = 5;
    options.epsilon = 0.3;
    options.rebuild_on_append = false;
    options.metric = metric;
    FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();
    Random rng(7);
    for (int i = 0; i < 150; ++i) {
      fw.Append(rng.UniformInt(0, 30));
      if (i % 17 != 0) continue;
      const std::vector<double> window = fw.window().ToVector();
      const Histogram& h = fw.Extract();
      double cost = 0.0;
      if (metric == WindowErrorMetric::kSse) {
        cost = h.SseAgainst(window);
      } else {
        for (const Bucket& b : h.buckets()) {
          double worst = 0.0;
          for (int64_t t = b.begin; t < b.end; ++t) {
            worst = std::max(worst,
                             std::fabs(window[static_cast<size_t>(t)] -
                                       b.value));
          }
          cost += worst;
        }
      }
      EXPECT_NEAR(fw.ApproxError(), cost, 1e-6 * (1.0 + cost))
          << "metric " << static_cast<int>(metric) << " step " << i;
    }
  }
}

// Serialization fuzz: arbitrary corruption must never crash — every input
// either round-trips to a structurally valid histogram or yields an error.
TEST(InvariantsTest, DeserializeNeverCrashesOnCorruptedBytes) {
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kRandomWalk, 200, 1);
  const std::string bytes =
      SerializeHistogram(BuildVOptimalHistogram(data, 10).histogram);
  Random rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupted = bytes;
    // Random byte flips and truncations.
    const int flips = static_cast<int>(rng.UniformInt(1, 8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                    corrupted.size()) - 1));
      corrupted[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    if (rng.Bernoulli(0.3)) {
      corrupted.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(corrupted.size()))));
    }
    auto result = DeserializeHistogram(corrupted);
    if (result.ok()) {
      EXPECT_TRUE(result.value().Validate().ok());
    }
  }
}

// Estimation identities every histogram must satisfy, checked on every
// builder output over random data.
TEST(InvariantsTest, HistogramEstimationIdentities) {
  Random rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> data;
    const int64_t n = rng.UniformInt(1, 120);
    for (int64_t i = 0; i < n; ++i) data.push_back(rng.Gaussian(0, 100));
    const int64_t b = rng.UniformInt(1, 12);
    const Histogram h = BuildVOptimalHistogram(data, b).histogram;

    // Range sums are additive and consistent with point estimates.
    const int64_t mid = rng.UniformInt(0, n);
    EXPECT_NEAR(h.RangeSum(0, mid) + h.RangeSum(mid, n), h.RangeSum(0, n),
                1e-7);
    double point_total = 0.0;
    for (int64_t i = 0; i < n; ++i) point_total += h.Estimate(i);
    EXPECT_NEAR(point_total, h.RangeSum(0, n), 1e-6);

    // Mean preservation: bucket means make the total estimated sum equal the
    // exact data sum.
    double exact_total = 0.0;
    for (double v : data) exact_total += v;
    EXPECT_NEAR(h.RangeSum(0, n), exact_total, 1e-6 * (1 + std::fabs(exact_total)));
  }
}

// The fixed window and the DP must agree exactly when eps is huge and B = 1
// (single bucket: both compute the same prefix error), and when B >= n
// (both exact).
TEST(InvariantsTest, DegenerateBucketCountsAgreeWithDp) {
  Random rng(23);
  std::vector<double> data;
  for (int i = 0; i < 40; ++i) data.push_back(rng.UniformInt(0, 99));

  for (int64_t buckets : {int64_t{1}, int64_t{64}}) {
    FixedWindowOptions options;
    options.window_size = 40;
    options.num_buckets = buckets;
    options.epsilon = 5.0;
    options.rebuild_on_append = false;
    FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();
    for (double v : data) fw.Append(v);
    EXPECT_NEAR(fw.ApproxError(), OptimalSse(data, buckets), 1e-7)
        << "B=" << buckets;
  }
}

// Batch and pointwise feeds commute with eviction for partially-filled
// time-like usage of the fixed window.
TEST(InvariantsTest, EvictionCommutesWithLazyRebuild) {
  FixedWindowOptions options;
  options.window_size = 32;
  options.num_buckets = 4;
  options.epsilon = 0.4;
  options.rebuild_on_append = false;
  FixedWindowHistogram a = FixedWindowHistogram::Create(options).value();
  FixedWindowHistogram b = FixedWindowHistogram::Create(options).value();
  Random rng(29);
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(rng.UniformInt(0, 50));

  for (double v : values) a.Append(v);
  a.EvictOldest();
  a.EvictOldest();

  // b receives the already-evicted suffix directly.
  for (size_t i = 2; i < values.size(); ++i) b.Append(values[i]);

  EXPECT_EQ(a.Extract(), b.Extract());
  EXPECT_DOUBLE_EQ(a.ApproxError(), b.ApproxError());
}

}  // namespace
}  // namespace streamhist
