#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace streamhist {
namespace {

TEST(LoggingTest, CheckPassesSilently) {
  STREAMHIST_CHECK(true) << "never evaluated";
  STREAMHIST_CHECK_EQ(1, 1);
  STREAMHIST_CHECK_LE(1, 2);
  SUCCEED();
}

using LoggingDeathTest = ::testing::Test;

TEST(LoggingDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH({ STREAMHIST_CHECK(1 == 2) << "context " << 42; },
               "CHECK failed: 1 == 2 context 42");
}

TEST(LoggingDeathTest, ComparisonMacrosAbort) {
  EXPECT_DEATH({ STREAMHIST_CHECK_EQ(3, 4); }, "CHECK failed");
  EXPECT_DEATH({ STREAMHIST_CHECK_LT(5, 5); }, "CHECK failed");
  EXPECT_DEATH({ STREAMHIST_CHECK_GE(1, 2); }, "CHECK failed");
}

TEST(LoggingTest, CheckBindsTighterThanDanglingElse) {
  // The macro must compose with unbraced if/else without grammar surprises.
  bool reached_else = false;
  if (false)
    STREAMHIST_CHECK(true);
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

TEST(LoggingTest, DcheckDisabledInReleaseDoesNotEvaluate) {
#ifdef NDEBUG
  int evaluations = 0;
  const auto costly = [&]() {
    ++evaluations;
    return true;
  };
  STREAMHIST_DCHECK(costly());
  (void)costly;
  EXPECT_EQ(evaluations, 0);
#else
  GTEST_SKIP() << "debug build: DCHECK is active";
#endif
}

}  // namespace
}  // namespace streamhist
