// Tests for MergeAdjacentHistograms (distributed-collector fusion) and the
// streaming subsequence-representation pipeline.

#include <vector>

#include <gtest/gtest.h>

#include "src/core/heuristics.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/timeseries/distance.h"
#include "src/timeseries/similarity.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

TEST(MergeHistogramsTest, ConcatenationPreservesDomainAndSums) {
  const std::vector<double> a_data{1, 1, 5, 5};
  const std::vector<double> b_data{9, 9, 9, 2, 2};
  const Histogram a = BuildVOptimalHistogram(a_data, 2).histogram;
  const Histogram b = BuildVOptimalHistogram(b_data, 2).histogram;
  const Histogram merged = MergeAdjacentHistograms(a, b, 4);
  EXPECT_EQ(merged.domain_size(), 9);
  EXPECT_TRUE(merged.Validate().ok());
  EXPECT_LE(merged.num_buckets(), 4);
  // Total estimated sum is preserved exactly (mean-weighted fusion).
  EXPECT_NEAR(merged.RangeSum(0, 9), a.RangeSum(0, 4) + b.RangeSum(0, 5),
              1e-9);
}

TEST(MergeHistogramsTest, NoFusionNeededKeepsBucketsExactly) {
  const Histogram a = Histogram::FromBucketsUnchecked({Bucket{0, 2, 1.0}});
  const Histogram b = Histogram::FromBucketsUnchecked({Bucket{0, 3, 7.0}});
  const Histogram merged = MergeAdjacentHistograms(a, b, 4);
  ASSERT_EQ(merged.num_buckets(), 2);
  EXPECT_EQ(merged.buckets()[0], (Bucket{0, 2, 1.0}));
  EXPECT_EQ(merged.buckets()[1], (Bucket{2, 5, 7.0}));
}

TEST(MergeHistogramsTest, PrefersFusingSimilarNeighbors) {
  // Three pieces: two nearly equal at the ends of `left`/start of `right`.
  const Histogram a = Histogram::FromBucketsUnchecked(
      {Bucket{0, 4, 0.0}, Bucket{4, 8, 10.0}});
  const Histogram b = Histogram::FromBucketsUnchecked(
      {Bucket{0, 4, 10.1}, Bucket{4, 8, 50.0}});
  const Histogram merged = MergeAdjacentHistograms(a, b, 3);
  ASSERT_EQ(merged.num_buckets(), 3);
  // The 10.0 / 10.1 neighbors should have fused.
  EXPECT_EQ(merged.buckets()[1].begin, 4);
  EXPECT_EQ(merged.buckets()[1].end, 12);
  EXPECT_NEAR(merged.buckets()[1].value, 10.05, 1e-9);
}

TEST(MergeHistogramsTest, MergedSseIsReasonableVsDirectBuild) {
  // Fusing two half-window sketches should land in the same error class as
  // a histogram built directly over the concatenation (no guarantee — the
  // greedy fusion is a heuristic — but it must not be wildly worse).
  Random rng(5);
  std::vector<double> all;
  for (int i = 0; i < 400; ++i) all.push_back(rng.UniformInt(0, 100));
  const std::vector<double> first(all.begin(), all.begin() + 200);
  const std::vector<double> second(all.begin() + 200, all.end());
  const int64_t b = 12;
  const Histogram merged = MergeAdjacentHistograms(
      BuildVOptimalHistogram(first, b).histogram,
      BuildVOptimalHistogram(second, b).histogram, b);
  const double direct = BuildVOptimalHistogram(all, b).error;
  EXPECT_LE(merged.SseAgainst(all), 3.0 * direct + 1e-6);
}

TEST(StreamingSubsequenceTest, MatchesExtractedWindowsShape) {
  const std::vector<double> series =
      GenerateDataset(DatasetKind::kUtilization, 400, 7);
  const auto reprs =
      BuildSubsequenceRepresentationsStreaming(series, 64, 16, 6, 0.2);
  const auto windows = ExtractSubsequences(series, 64, 16);
  ASSERT_EQ(reprs.size(), windows.size());
  for (size_t i = 0; i < reprs.size(); ++i) {
    EXPECT_EQ(reprs[i].domain_size(), 64);
    EXPECT_LE(reprs[i].num_segments(), 6);
  }
}

TEST(StreamingSubsequenceTest, RepresentationsLowerBoundTheirWindows) {
  const std::vector<double> series =
      GenerateDataset(DatasetKind::kSineMix, 500, 9);
  const int64_t window = 64;
  const int64_t step = 32;
  const auto reprs = BuildSubsequenceRepresentationsStreaming(
      series, window, step, 8, 0.1);
  const auto windows = ExtractSubsequences(series, window, step);
  const std::vector<double> query =
      GenerateDataset(DatasetKind::kRandomWalk, window, 11);
  ASSERT_EQ(reprs.size(), windows.size());
  for (size_t i = 0; i < reprs.size(); ++i) {
    // Window means are exact (sliding prefix sums), so the GEMINI bound
    // holds for every snapshot.
    EXPECT_LE(SquaredLowerBound(query, reprs[i]),
              SquaredEuclidean(query, windows[i]) + 1e-6)
        << "snapshot " << i;
  }
}

TEST(StreamingSubsequenceTest, SnapshotQualityWithinGuarantee) {
  const std::vector<double> series =
      GenerateDataset(DatasetKind::kPiecewiseConstant, 300, 13);
  const int64_t window = 50;
  const auto reprs = BuildSubsequenceRepresentationsStreaming(
      series, window, 25, 5, 0.3);
  const auto windows = ExtractSubsequences(series, window, 25);
  ASSERT_EQ(reprs.size(), windows.size());
  for (size_t i = 0; i < reprs.size(); ++i) {
    const double opt = OptimalSse(windows[i], 5);
    double sse = 0.0;
    const std::vector<double> approx = reprs[i].Reconstruct();
    for (size_t t = 0; t < approx.size(); ++t) {
      sse += (windows[i][t] - approx[t]) * (windows[i][t] - approx[t]);
    }
    EXPECT_LE(sse, 1.3 * opt + 1e-6) << "snapshot " << i;
  }
}

}  // namespace
}  // namespace streamhist
