// Tests that pin down specific claims made in the paper's text, beyond the
// algorithms themselves.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/vopt_dp.h"
#include "src/stream/prefix_sums.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

// Section 4.2, observation 1: SQERROR[i+1, j] is non-increasing as i
// increases with j fixed (shrinking bucket), and observation 2:
// HERROR[i, k-1] is non-decreasing as i increases.
TEST(PaperFidelityTest, Section42MonotonicityObservations) {
  Random rng(3);
  std::vector<double> data;
  for (int i = 0; i < 80; ++i) data.push_back(rng.UniformInt(0, 50));
  PrefixSums sums(data);

  // Observation 1: bucket [i, 80) shrinks as i grows.
  double prev = std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i < 80; ++i) {
    const double err = sums.SqError(i, 80);
    EXPECT_LE(err, prev + 1e-9) << "i=" << i;
    prev = err;
  }

  // Observation 2: HERROR over growing prefixes with fixed bucket count.
  for (int64_t k : {1, 3, 5}) {
    double prev_h = 0.0;
    for (int64_t i = 1; i <= 80; i += 7) {
      const std::vector<double> prefix(data.begin(),
                                       data.begin() + static_cast<ptrdiff_t>(i));
      const double h = OptimalSse(prefix, k);
      EXPECT_GE(h + 1e-9, prev_h) << "k=" << k << " i=" << i;
      prev_h = h;
    }
  }
}

// Section 4.2's negative result, made concrete with the paper's own
// sequence: any sequence is the sum of a non-increasing and a non-decreasing
// function (F(i) = sum_{j>=i} x_j, G(i) = sum_{j<=i} x_j), so monotonicity
// alone cannot speed up *exact* minimization. The paper's example:
// 3,7,5,8,2,6,4 -> F = 35,32,25,20,12,10,4 and G = 3,10,15,23,25,31,35,
// summing to the original shifted by 35.
TEST(PaperFidelityTest, Section42DecompositionExample) {
  const std::vector<double> x{3, 7, 5, 8, 2, 6, 4};
  const double total = 35.0;
  std::vector<double> f(x.size()), g(x.size());
  double suffix = total;
  double prefix = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    f[i] = suffix;
    suffix -= x[i];
    prefix += x[i];
    g[i] = prefix;
  }
  EXPECT_EQ(f, (std::vector<double>{35, 32, 25, 20, 12, 10, 4}));
  EXPECT_EQ(g, (std::vector<double>{3, 10, 15, 23, 25, 31, 35}));
  for (size_t i = 0; i < x.size(); ++i) {
    // x_i + total = F(i) + G(i): the shifted sequence of the paper.
    EXPECT_DOUBLE_EQ(f[i] + g[i], x[i] + total);
    EXPECT_TRUE(i == 0 || f[i] <= f[i - 1]);
    EXPECT_TRUE(i == 0 || g[i] >= g[i - 1]);
  }
  // And, as the paper notes, the shift destroys *ratio* approximation:
  // 38 is within 3% of 37 while the underlying 3 vs 2 differ by 50%.
  EXPECT_LT((38.0 - 37.0) / 37.0, 0.03);
  EXPECT_GT((3.0 - 2.0) / 2.0, 0.49);
}

// Section 4.4 / Figure 4: a (1+delta) interval covering of HERROR computed
// for one window is NOT a valid covering after the window slides (the
// function shifts down when a large leading value is evicted), which is why
// the agglomerative lists cannot be reused and CreateList rebuilds them.
TEST(PaperFidelityTest, Section44ShiftBreaksIntervalCovering) {
  // Example 1's stream: a huge leading value, then small ones.
  const std::vector<double> before{100, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<double> after{0, 0, 0, 1, 1, 1, 1, 1};
  const double delta = 1.0;

  auto herror1 = [](const std::vector<double>& w, int64_t p) {
    const std::vector<double> prefix(w.begin(),
                                     w.begin() + static_cast<ptrdiff_t>(p));
    return OptimalSse(prefix, 1);
  };

  // Build the greedy (1+delta) covering of HERROR[ . , 1] for `before`:
  // intervals [a, b] with HERROR[b] <= (1+delta) * HERROR[a].
  std::vector<std::pair<int64_t, int64_t>> intervals;
  int64_t a = 1;
  for (int64_t p = 2; p <= 8; ++p) {
    if (herror1(before, p) > (1 + delta) * herror1(before, a)) {
      intervals.emplace_back(a, p - 1);
      a = p;
    }
  }
  intervals.emplace_back(a, 8);
  // The paper: (1,1),(2,8) — HERROR jumps from 0 to ~huge at p=2, then stays
  // within a factor 2 through p=8 (the 100 dominates).
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (std::pair<int64_t, int64_t>(1, 1)));
  EXPECT_EQ(intervals[1], (std::pair<int64_t, int64_t>(2, 8)));

  // After the slide the same intervals are NOT a valid covering: within the
  // old interval (2,8), HERROR now spans from 0 to a positive value — an
  // unbounded ratio, far beyond (1+delta).
  EXPECT_DOUBLE_EQ(herror1(after, 2), 0.0);
  EXPECT_GT(herror1(after, 8), 0.0);
  // A valid covering of the shifted function needs the paper's new
  // endpoints {3, 6, 8}: HERROR is 0 through p=3, then grows.
  EXPECT_DOUBLE_EQ(herror1(after, 3), 0.0);
  EXPECT_GT(herror1(after, 4), 0.0);
  EXPECT_LE(herror1(after, 6), (1 + delta) * herror1(after, 4) + 1e-12);
  EXPECT_GT(herror1(after, 7), (1 + delta) * herror1(after, 4));
}

// Footnote 7 / section 4.5: the number of intervals per level is bounded by
// 1 + log_{1+delta}(HERROR[n, B]) for bounded integer inputs.
TEST(PaperFidelityTest, IntervalCountBoundHolds) {
  Random rng(9);
  std::vector<double> data;
  for (int i = 0; i < 200; ++i) data.push_back(rng.UniformInt(0, 255));
  const double delta = 0.25;

  auto herror1 = [&](int64_t p) {
    const std::vector<double> prefix(data.begin(),
                                     data.begin() + static_cast<ptrdiff_t>(p));
    return OptimalSse(prefix, 1);
  };
  int64_t count = 1;
  int64_t a = 1;
  double first_nonzero = 0.0;
  for (int64_t p = 2; p <= 200; ++p) {
    if (herror1(p) > (1 + delta) * herror1(a)) {
      ++count;
      a = p;
      if (first_nonzero == 0.0) first_nonzero = herror1(p);
    }
  }
  // Bound: zero-error prefix forms one interval; after that HERROR >= the
  // first nonzero value (>= 1/2 for integers) and grows by (1+delta) per
  // interval.
  const double bound =
      2.0 + std::log(herror1(200) / std::max(first_nonzero, 0.5)) /
                std::log(1 + delta);
  EXPECT_LE(static_cast<double>(count), bound + 1.0);
}

}  // namespace
}  // namespace streamhist
