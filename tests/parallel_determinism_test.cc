// The determinism contract of the parallel construction engine: every
// threaded path (V-optimal DP layers, agglomerative extract, engine batch
// refresh) must produce BIT-identical output for every thread count,
// because the library's guarantees are deterministic (1+eps bounds, not
// probabilistic ones).

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/agglomerative.h"
#include "src/core/approx_dp.h"
#include "src/core/bucket_cost.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/engine/query_engine.h"
#include "src/stream/prefix_sums.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace streamhist {
namespace {

const int kThreadCounts[] = {1, 2, 8};

// Exact bit pattern of every bucket: EXPECT_EQ on doubles would also pass
// for -0.0 vs 0.0; the contract is stronger.
std::vector<uint64_t> BucketBits(const Histogram& h) {
  std::vector<uint64_t> bits;
  for (const Bucket& b : h.buckets()) {
    bits.push_back(static_cast<uint64_t>(b.begin));
    bits.push_back(static_cast<uint64_t>(b.end));
    bits.push_back(std::bit_cast<uint64_t>(b.value));
  }
  return bits;
}

class ThreadCountRestorer {
 public:
  ~ThreadCountRestorer() { SetThreadCount(DefaultThreadCount()); }
};

TEST(ParallelDeterminismTest, VOptDpIsBitIdenticalAcrossThreadCounts) {
  ThreadCountRestorer restore;
// The DP is O(n^2 B); the unoptimized build keeps the same coverage at a
// size that finishes in seconds.
#ifdef NDEBUG
  const int64_t n = 10000;
#else
  const int64_t n = 2500;
#endif
  const int64_t num_buckets = 64;
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, n, /*seed=*/42);

  // One build per thread count in {1, 2, 8}; the threads=1 run is the serial
  // baseline the others must match bit-for-bit.
  std::vector<uint64_t> serial_bits;
  uint64_t serial_error = 0;
  for (const int threads : kThreadCounts) {
    SetThreadCount(threads);
    const OptimalHistogramResult result =
        BuildVOptimalHistogram(data, num_buckets);
    if (threads == 1) {
      serial_bits = BucketBits(result.histogram);
      serial_error = std::bit_cast<uint64_t>(result.error);
      ASSERT_FALSE(serial_bits.empty());
      continue;
    }
    EXPECT_EQ(BucketBits(result.histogram), serial_bits)
        << "threads=" << threads;
    EXPECT_EQ(std::bit_cast<uint64_t>(result.error), serial_error)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, VOptDpTestSeedsAreBitIdentical) {
  ThreadCountRestorer restore;
  // The seed sweep mirrors vopt_dp_test's generator usage at sizes where the
  // parallel j-sweep actually splits into multiple chunks.
  for (const uint64_t seed : {1u, 21u, 33u, 44u}) {
    Random rng(seed);
    std::vector<double> data;
    for (int i = 0; i < 2000; ++i) data.push_back(rng.UniformDouble(0, 100));

    SetThreadCount(1);
    const OptimalHistogramResult serial = BuildVOptimalHistogram(data, 16);
    const double serial_sse = OptimalSse(data, 16);
    for (const int threads : kThreadCounts) {
      SetThreadCount(threads);
      const OptimalHistogramResult result = BuildVOptimalHistogram(data, 16);
      EXPECT_EQ(BucketBits(result.histogram), BucketBits(serial.histogram))
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(std::bit_cast<uint64_t>(OptimalSse(data, 16)),
                std::bit_cast<uint64_t>(serial_sse))
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

// A BucketCost that computes exactly what SseBucketCost computes but is not
// an SseBucketCost — so BuildOptimalHistogram cannot route it to the
// devirtualized fast path and must run the templated kernel with virtual
// per-candidate dispatch, i.e. the historical code shape. Comparing it
// bit-for-bit against the devirtualized SseFlatCost instantiation proves the
// exact-DP restructuring (vopt_kernel.h) changed nothing observable.
class OpaqueSseCost : public BucketCost {
 public:
  explicit OpaqueSseCost(std::span<const double> data) : sums_(data) {}
  double Cost(int64_t i, int64_t j) const override {
    return sums_.SqError(i, j);
  }
  double Representative(int64_t i, int64_t j) const override {
    return sums_.Mean(i, j);
  }
  int64_t size() const override { return sums_.size(); }

 private:
  PrefixSums sums_;
};

TEST(ParallelDeterminismTest, VirtualKernelIsBitIdenticalToDevirtualized) {
  ThreadCountRestorer restore;
  for (const uint64_t seed : {3u, 11u}) {
    const std::vector<double> data =
        GenerateDataset(DatasetKind::kRandomWalk, 3000, seed);
    const OpaqueSseCost opaque(data);
    for (const int threads : kThreadCounts) {
      SetThreadCount(threads);
      const OptimalHistogramResult generic =
          BuildOptimalHistogram(opaque, 32);
      const OptimalHistogramResult devirtualized =
          BuildVOptimalHistogram(data, 32);
      EXPECT_EQ(BucketBits(generic.histogram),
                BucketBits(devirtualized.histogram))
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(std::bit_cast<uint64_t>(generic.error),
                std::bit_cast<uint64_t>(devirtualized.error))
          << "seed=" << seed << " threads=" << threads;
      // OptimalSse shares the same kernel: it must reproduce the build's
      // DP value exactly.
      EXPECT_EQ(std::bit_cast<uint64_t>(OptimalSse(data, 32)),
                std::bit_cast<uint64_t>(devirtualized.error))
          << "seed=" << seed << " threads=" << threads;

      // Same equivalence for the approximate DP's two entry points.
      const ApproxHistogramResult approx_generic =
          BuildApproxHistogram(opaque, 32, 0.1);
      const ApproxHistogramResult approx_devirt =
          BuildApproxVOptimalHistogram(data, 32, 0.1);
      EXPECT_EQ(BucketBits(approx_generic.histogram),
                BucketBits(approx_devirt.histogram))
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(std::bit_cast<uint64_t>(approx_generic.sse),
                std::bit_cast<uint64_t>(approx_devirt.sse))
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, ApproxDpIsBitIdenticalAcrossThreadCounts) {
  ThreadCountRestorer restore;
#ifdef NDEBUG
  const int64_t n = 20000;
#else
  const int64_t n = 5000;
#endif
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, n, /*seed=*/77);
  for (const double delta : {0.01, 0.1, 0.5}) {
    std::vector<uint64_t> serial_bits;
    uint64_t serial_sse = 0;
    uint64_t serial_dp = 0;
    int64_t serial_evals = 0;
    for (const int threads : kThreadCounts) {
      SetThreadCount(threads);
      const ApproxHistogramResult result =
          BuildApproxVOptimalHistogram(data, 64, delta);
      if (threads == 1) {
        serial_bits = BucketBits(result.histogram);
        serial_sse = std::bit_cast<uint64_t>(result.sse);
        serial_dp = std::bit_cast<uint64_t>(result.dp_error);
        serial_evals = result.cost_evals;
        ASSERT_FALSE(serial_bits.empty());
        continue;
      }
      EXPECT_EQ(BucketBits(result.histogram), serial_bits)
          << "delta=" << delta << " threads=" << threads;
      EXPECT_EQ(std::bit_cast<uint64_t>(result.sse), serial_sse)
          << "delta=" << delta << " threads=" << threads;
      EXPECT_EQ(std::bit_cast<uint64_t>(result.dp_error), serial_dp)
          << "delta=" << delta << " threads=" << threads;
      EXPECT_EQ(result.cost_evals, serial_evals)
          << "delta=" << delta << " threads=" << threads;
    }
  }
}

// The degradation ladder's no-deadline path must stay on rung 0 and inherit
// the kernel's bit-determinism: cooperative cancellation checks sit at grain
// boundaries and never perturb arithmetic when no deadline fires.
TEST(ParallelDeterminismTest, LadderBuildIsBitIdenticalAcrossThreadCounts) {
  ThreadCountRestorer restore;
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, 3000, /*seed=*/13);
  for (const WindowBuildMode mode :
       {WindowBuildMode::kExact, WindowBuildMode::kApprox}) {
    std::vector<uint64_t> serial_bits;
    uint64_t serial_sse = 0;
    for (const int threads : kThreadCounts) {
      SetThreadCount(threads);
      StreamConfig config;
      config.window_size = 1024;
      config.num_buckets = 24;
      config.epsilon = 0.1;
      config.build_mode = mode;
      config.build_delta = 0.1;
      ManagedStream stream = ManagedStream::Create(config).value();
      stream.AppendBatch(data);
      const WindowBuildReport report = stream.BuildWindowHistogram();
      EXPECT_FALSE(report.degradation.degraded);
      if (threads == 1) {
        serial_bits = BucketBits(report.histogram);
        serial_sse = std::bit_cast<uint64_t>(report.sse);
        ASSERT_FALSE(serial_bits.empty());
        continue;
      }
      EXPECT_EQ(BucketBits(report.histogram), serial_bits)
          << "mode=" << static_cast<int>(mode) << " threads=" << threads;
      EXPECT_EQ(std::bit_cast<uint64_t>(report.sse), serial_sse)
          << "mode=" << static_cast<int>(mode) << " threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, AgglomerativeExtractIsBitIdentical) {
  ThreadCountRestorer restore;
  // 6k points at B=64 closes hundreds of intervals per level — enough that
  // every Extract level fans out to multiple ParallelFor chunks — while
  // staying fast under the Debug+ASan CI job.
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kRandomWalk, 6000, /*seed=*/5);
  ApproxHistogramOptions options;
  options.num_buckets = 64;
  options.epsilon = 0.1;
  AgglomerativeHistogram agg = AgglomerativeHistogram::Create(options).value();
  agg.AppendBatch(data);

  SetThreadCount(1);
  const std::vector<uint64_t> serial_bits = BucketBits(agg.Extract());
  for (const int threads : kThreadCounts) {
    SetThreadCount(threads);
    EXPECT_EQ(BucketBits(agg.Extract()), serial_bits) << "threads=" << threads;
  }
}

// One full engine pass under a given thread count: multi-stream batch
// append, parallel refresh, then the queryable surfaces.
struct EngineFingerprint {
  std::vector<std::vector<uint64_t>> window_buckets;
  std::vector<std::string> describes;

  bool operator==(const EngineFingerprint&) const = default;
};

EngineFingerprint RunEngineBatch(int threads) {
  SetThreadCount(threads);
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 512;
  config.num_buckets = 16;
  config.epsilon = 0.1;

  std::vector<StreamBatch> batches;
  for (int s = 0; s < 6; ++s) {
    const std::string name = "stream" + std::to_string(s);
    EXPECT_TRUE(engine.CreateStream(name, config).ok());
    batches.push_back(StreamBatch{
        name, GenerateDataset(DatasetKind::kUtilization, 4096,
                              /*seed=*/200 + static_cast<uint64_t>(s))});
  }
  EXPECT_TRUE(engine.AppendBatches(batches).ok());
  engine.RefreshAll();

  EngineFingerprint fp;
  for (const StreamBatch& batch : batches) {
    const StreamHandle stream = engine.Stream(batch.name).value();
    fp.window_buckets.push_back(
        BucketBits(stream.stream().window_histogram().Extract()));
    fp.describes.push_back(engine.Execute("DESCRIBE " + batch.name).value());
  }
  return fp;
}

TEST(ParallelDeterminismTest, EngineBatchRefreshIsBitIdentical) {
  ThreadCountRestorer restore;
  const EngineFingerprint serial = RunEngineBatch(1);
  ASSERT_EQ(serial.window_buckets.size(), 6u);
  for (const int threads : kThreadCounts) {
    EXPECT_TRUE(RunEngineBatch(threads) == serial) << "threads=" << threads;
  }
}

// Snapshot publication is part of the deterministic surface: the snapshot a
// handle serves after AppendBatches + RefreshAll is bit-identical across
// thread counts, and a snapshot acquired before a republish keeps answering
// from the old version in full.
TEST(ParallelDeterminismTest, PublishedSnapshotsAreBitIdenticalAcrossThreads) {
  ThreadCountRestorer restore;

  auto snapshot_bits = [](int threads) {
    SetThreadCount(threads);
    QueryEngine engine;
    StreamConfig config;
    config.window_size = 256;
    config.num_buckets = 16;
    config.epsilon = 0.1;
    std::vector<StreamBatch> batches;
    for (int s = 0; s < 4; ++s) {
      const std::string name = "stream" + std::to_string(s);
      EXPECT_TRUE(engine.CreateStream(name, config).ok());
      batches.push_back(StreamBatch{
          name, GenerateDataset(DatasetKind::kRandomWalk, 2048,
                                /*seed=*/300 + static_cast<uint64_t>(s))});
    }
    EXPECT_TRUE(engine.AppendBatches(batches).ok());
    engine.RefreshAll();
    std::vector<std::vector<uint64_t>> bits;
    for (const StreamBatch& batch : batches) {
      const StreamHandle handle = engine.Stream(batch.name).value();
      bits.push_back(BucketBits(handle.snapshot()->histogram()));
    }
    return bits;
  };

  const auto serial = snapshot_bits(1);
  for (const int threads : kThreadCounts) {
    EXPECT_EQ(snapshot_bits(threads), serial) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, HeldSnapshotIsImmuneToRepublish) {
  ThreadCountRestorer restore;
  SetThreadCount(2);
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  ASSERT_TRUE(engine.CreateStream("a", config).ok());
  ASSERT_TRUE(
      engine.AppendBatch("a", GenerateDataset(DatasetKind::kUtilization, 128,
                                              /*seed=*/11))
          .ok());

  const StreamHandle handle = engine.Stream("a").value();
  const std::shared_ptr<const QuerySnapshot> held = handle.snapshot();
  const std::vector<uint64_t> held_bits = BucketBits(held->histogram());
  const int64_t held_points = held->total_points;

  // Republish via batch append + parallel refresh: the held snapshot keeps
  // its entire pre-republish state, the fresh one moves on.
  const std::vector<StreamBatch> more{
      {"a", GenerateDataset(DatasetKind::kRandomWalk, 128, /*seed=*/12)}};
  ASSERT_TRUE(engine.AppendBatches(more).ok());
  engine.RefreshAll();

  EXPECT_EQ(BucketBits(held->histogram()), held_bits);
  EXPECT_EQ(held->total_points, held_points);
  const std::shared_ptr<const QuerySnapshot> fresh = handle.snapshot();
  EXPECT_GT(fresh->version, held->version);
  EXPECT_EQ(fresh->total_points, held_points + 128);
}

TEST(ParallelDeterminismTest, AppendBatchesRejectsDuplicatesAndUnknowns) {
  ThreadCountRestorer restore;
  SetThreadCount(2);
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 64;
  ASSERT_TRUE(engine.CreateStream("a", config).ok());

  const std::vector<StreamBatch> dup{{"a", {1.0}}, {"a", {2.0}}};
  EXPECT_FALSE(engine.AppendBatches(dup).ok());
  const std::vector<StreamBatch> unknown{{"a", {1.0}}, {"missing", {2.0}}};
  EXPECT_FALSE(engine.AppendBatches(unknown).ok());
  // Validation failed before any append: stream "a" saw no points.
  EXPECT_EQ(engine.Stream("a").value().stream().total_points(), 0);
}

}  // namespace
}  // namespace streamhist
