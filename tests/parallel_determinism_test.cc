// The determinism contract of the parallel construction engine: every
// threaded path (V-optimal DP layers, agglomerative extract, engine batch
// refresh) must produce BIT-identical output for every thread count,
// because the library's guarantees are deterministic (1+eps bounds, not
// probabilistic ones).

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/agglomerative.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/engine/query_engine.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace streamhist {
namespace {

const int kThreadCounts[] = {1, 2, 8};

// Exact bit pattern of every bucket: EXPECT_EQ on doubles would also pass
// for -0.0 vs 0.0; the contract is stronger.
std::vector<uint64_t> BucketBits(const Histogram& h) {
  std::vector<uint64_t> bits;
  for (const Bucket& b : h.buckets()) {
    bits.push_back(static_cast<uint64_t>(b.begin));
    bits.push_back(static_cast<uint64_t>(b.end));
    bits.push_back(std::bit_cast<uint64_t>(b.value));
  }
  return bits;
}

class ThreadCountRestorer {
 public:
  ~ThreadCountRestorer() { SetThreadCount(DefaultThreadCount()); }
};

TEST(ParallelDeterminismTest, VOptDpIsBitIdenticalAcrossThreadCounts) {
  ThreadCountRestorer restore;
// The DP is O(n^2 B); the unoptimized build keeps the same coverage at a
// size that finishes in seconds.
#ifdef NDEBUG
  const int64_t n = 10000;
#else
  const int64_t n = 2500;
#endif
  const int64_t num_buckets = 64;
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, n, /*seed=*/42);

  // One build per thread count in {1, 2, 8}; the threads=1 run is the serial
  // baseline the others must match bit-for-bit.
  std::vector<uint64_t> serial_bits;
  uint64_t serial_error = 0;
  for (const int threads : kThreadCounts) {
    SetThreadCount(threads);
    const OptimalHistogramResult result =
        BuildVOptimalHistogram(data, num_buckets);
    if (threads == 1) {
      serial_bits = BucketBits(result.histogram);
      serial_error = std::bit_cast<uint64_t>(result.error);
      ASSERT_FALSE(serial_bits.empty());
      continue;
    }
    EXPECT_EQ(BucketBits(result.histogram), serial_bits)
        << "threads=" << threads;
    EXPECT_EQ(std::bit_cast<uint64_t>(result.error), serial_error)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, VOptDpTestSeedsAreBitIdentical) {
  ThreadCountRestorer restore;
  // The seed sweep mirrors vopt_dp_test's generator usage at sizes where the
  // parallel j-sweep actually splits into multiple chunks.
  for (const uint64_t seed : {1u, 21u, 33u, 44u}) {
    Random rng(seed);
    std::vector<double> data;
    for (int i = 0; i < 2000; ++i) data.push_back(rng.UniformDouble(0, 100));

    SetThreadCount(1);
    const OptimalHistogramResult serial = BuildVOptimalHistogram(data, 16);
    const double serial_sse = OptimalSse(data, 16);
    for (const int threads : kThreadCounts) {
      SetThreadCount(threads);
      const OptimalHistogramResult result = BuildVOptimalHistogram(data, 16);
      EXPECT_EQ(BucketBits(result.histogram), BucketBits(serial.histogram))
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(std::bit_cast<uint64_t>(OptimalSse(data, 16)),
                std::bit_cast<uint64_t>(serial_sse))
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, AgglomerativeExtractIsBitIdentical) {
  ThreadCountRestorer restore;
  // 6k points at B=64 closes hundreds of intervals per level — enough that
  // every Extract level fans out to multiple ParallelFor chunks — while
  // staying fast under the Debug+ASan CI job.
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kRandomWalk, 6000, /*seed=*/5);
  ApproxHistogramOptions options;
  options.num_buckets = 64;
  options.epsilon = 0.1;
  AgglomerativeHistogram agg = AgglomerativeHistogram::Create(options).value();
  agg.AppendBatch(data);

  SetThreadCount(1);
  const std::vector<uint64_t> serial_bits = BucketBits(agg.Extract());
  for (const int threads : kThreadCounts) {
    SetThreadCount(threads);
    EXPECT_EQ(BucketBits(agg.Extract()), serial_bits) << "threads=" << threads;
  }
}

// One full engine pass under a given thread count: multi-stream batch
// append, parallel refresh, then the queryable surfaces.
struct EngineFingerprint {
  std::vector<std::vector<uint64_t>> window_buckets;
  std::vector<std::string> describes;

  bool operator==(const EngineFingerprint&) const = default;
};

EngineFingerprint RunEngineBatch(int threads) {
  SetThreadCount(threads);
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 512;
  config.num_buckets = 16;
  config.epsilon = 0.1;

  std::vector<StreamBatch> batches;
  for (int s = 0; s < 6; ++s) {
    const std::string name = "stream" + std::to_string(s);
    EXPECT_TRUE(engine.CreateStream(name, config).ok());
    batches.push_back(StreamBatch{
        name, GenerateDataset(DatasetKind::kUtilization, 4096,
                              /*seed=*/200 + static_cast<uint64_t>(s))});
  }
  EXPECT_TRUE(engine.AppendBatches(batches).ok());
  engine.RefreshAll();

  EngineFingerprint fp;
  for (const StreamBatch& batch : batches) {
    ManagedStream* stream = engine.GetStream(batch.name).value();
    fp.window_buckets.push_back(
        BucketBits(stream->window_histogram().Extract()));
    fp.describes.push_back(engine.Execute("DESCRIBE " + batch.name).value());
  }
  return fp;
}

TEST(ParallelDeterminismTest, EngineBatchRefreshIsBitIdentical) {
  ThreadCountRestorer restore;
  const EngineFingerprint serial = RunEngineBatch(1);
  ASSERT_EQ(serial.window_buckets.size(), 6u);
  for (const int threads : kThreadCounts) {
    EXPECT_TRUE(RunEngineBatch(threads) == serial) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, AppendBatchesRejectsDuplicatesAndUnknowns) {
  ThreadCountRestorer restore;
  SetThreadCount(2);
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 64;
  ASSERT_TRUE(engine.CreateStream("a", config).ok());

  const std::vector<StreamBatch> dup{{"a", {1.0}}, {"a", {2.0}}};
  EXPECT_FALSE(engine.AppendBatches(dup).ok());
  const std::vector<StreamBatch> unknown{{"a", {1.0}}, {"missing", {2.0}}};
  EXPECT_FALSE(engine.AppendBatches(unknown).ok());
  // Validation failed before any append: stream "a" saw no points.
  EXPECT_EQ(engine.GetStream("a").value()->total_points(), 0);
}

}  // namespace
}  // namespace streamhist
