#include "src/stream/prefix_sums.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace streamhist {
namespace {

// Brute-force SSE of representing values[i..j) by their mean.
double BruteSse(const std::vector<double>& values, int64_t i, int64_t j) {
  if (j - i <= 1) return 0.0;
  double mean = 0.0;
  for (int64_t k = i; k < j; ++k) mean += values[static_cast<size_t>(k)];
  mean /= static_cast<double>(j - i);
  double sse = 0.0;
  for (int64_t k = i; k < j; ++k) {
    const double d = values[static_cast<size_t>(k)] - mean;
    sse += d * d;
  }
  return sse;
}

TEST(PrefixSumsTest, EmptySequence) {
  PrefixSums sums(std::vector<double>{});
  EXPECT_EQ(sums.size(), 0);
  EXPECT_DOUBLE_EQ(sums.Sum(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(sums.SqError(0, 0), 0.0);
}

TEST(PrefixSumsTest, SingleValue) {
  PrefixSums sums(std::vector<double>{42.0});
  EXPECT_EQ(sums.size(), 1);
  EXPECT_DOUBLE_EQ(sums.Sum(0, 1), 42.0);
  EXPECT_DOUBLE_EQ(sums.SumSquares(0, 1), 42.0 * 42.0);
  EXPECT_DOUBLE_EQ(sums.Mean(0, 1), 42.0);
  EXPECT_DOUBLE_EQ(sums.SqError(0, 1), 0.0);
}

TEST(PrefixSumsTest, KnownSequence) {
  // The paper's Example 1 stream: 100, 0, 0, 0, 1, 1, 1, 1.
  const std::vector<double> v{100, 0, 0, 0, 1, 1, 1, 1};
  PrefixSums sums(v);
  EXPECT_DOUBLE_EQ(sums.Sum(0, 8), 104.0);
  EXPECT_DOUBLE_EQ(sums.Sum(1, 4), 0.0);
  EXPECT_DOUBLE_EQ(sums.SqError(1, 4), 0.0);   // constant zeros
  EXPECT_DOUBLE_EQ(sums.SqError(4, 8), 0.0);   // constant ones
  // HERROR[4..6) bucket {0, 1}: mean 0.5, SSE 0.5.
  EXPECT_DOUBLE_EQ(sums.SqError(3, 5), 0.5);
}

TEST(PrefixSumsTest, MatchesBruteForceOnRandomData) {
  Random rng(7);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.UniformDouble(-100, 100));
  PrefixSums sums(v);
  for (int64_t i = 0; i <= 200; i += 7) {
    for (int64_t j = i; j <= 200; j += 13) {
      EXPECT_NEAR(sums.SqError(i, j), BruteSse(v, i, j), 1e-6)
          << "range [" << i << "," << j << ")";
    }
  }
}

TEST(PrefixSumsTest, SqErrorNeverNegative) {
  // Large offset stresses floating-point cancellation.
  Random rng(11);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) {
    v.push_back(1e9 + rng.UniformDouble(0.0, 1e-3));
  }
  PrefixSums sums(v);
  for (int64_t i = 0; i < 500; i += 11) {
    for (int64_t j = i; j <= 500; j += 17) {
      EXPECT_GE(sums.SqError(i, j), 0.0);
    }
  }
}

TEST(PrefixSumsTest, AdditivityOfSums) {
  Random rng(3);
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.Gaussian(0, 10));
  PrefixSums sums(v);
  EXPECT_NEAR(sums.Sum(0, 50) + sums.Sum(50, 100), sums.Sum(0, 100), 1e-9);
  EXPECT_NEAR(sums.SumSquares(0, 30) + sums.SumSquares(30, 100),
              sums.SumSquares(0, 100), 1e-9);
}

}  // namespace
}  // namespace streamhist
