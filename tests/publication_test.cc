// Publication-model suite (DESIGN.md §13): the PR8 write-path contract.
//
// Covers the policy surface — per-batch publication by default, coalescing
// under a positive staleness bound with the flusher closing the gap, and the
// explicit publication points (FLUSH / BUILD / SAVE) — plus the sectioned
// snapshot's copy-on-write guarantees: unchanged sections are shared between
// consecutive publishes, and the publication telemetry lands in STATS.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/query_engine.h"

namespace streamhist {
namespace {

StreamConfig SmallConfig(int64_t window = 64, int64_t buckets = 8) {
  StreamConfig config;
  config.window_size = window;
  config.num_buckets = buckets;
  return config;
}

int64_t SnapshotPoints(const QueryEngine& engine, const std::string& name) {
  return engine.Stream(name).value().snapshot()->total_points;
}

// ---------------------------------------------------------------------------
// Default policy: every acked batch is reader-visible before the ack returns.
TEST(PublicationTest, DefaultPolicyPublishesPerBatch) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig()).ok());
  // Every ingest surface publishes before it acks under bound 0.
  ASSERT_TRUE(engine.Execute("APPEND s 1 2 3").ok());
  EXPECT_EQ(SnapshotPoints(engine, "s"), 3);
  ASSERT_TRUE(engine.AppendBatch("s", std::vector<double>{4, 5}).ok());
  EXPECT_EQ(SnapshotPoints(engine, "s"), 5);
  const std::vector<double> batch{6, 7, 8};
  ASSERT_TRUE(engine.ExecuteBatchAppend("s", batch).ok());
  EXPECT_EQ(SnapshotPoints(engine, "s"), 8);
  // Nothing is ever pending, so FLUSH is a no-op.
  EXPECT_EQ(engine.Execute("FLUSH").value(), "flushed 0 stream(s)");
}

// ---------------------------------------------------------------------------
// The staleness-bound property: an acked value may lag behind the published
// snapshot, but never longer than the bound — the background flusher closes
// the gap even when the writer goes quiet. The deadline asserted here is
// deliberately loose (bound plus generous scheduler slack) so the test
// verifies the guarantee without becoming a CI timing lottery.
TEST(PublicationTest, AckedValuesVisibleWithinStalenessBound) {
  constexpr int64_t kBoundMs = 25;
  constexpr auto kDeadline = std::chrono::milliseconds(2000);

  QueryEngine engine;
  StreamConfig config = SmallConfig();
  config.publish_staleness_ms = kBoundMs;
  ASSERT_TRUE(engine.CreateStream("s", config).ok());
  const StreamHandle handle = engine.Stream("s").value();

  int64_t acked = 0;
  for (int round = 0; round < 5; ++round) {
    const std::vector<double> batch(static_cast<size_t>(round + 1), 1.0);
    ASSERT_TRUE(engine.AppendBatch("s", batch).ok());
    acked += static_cast<int64_t>(batch.size());
    // The writer is now quiet: only the flusher can publish this round.
    const auto start = std::chrono::steady_clock::now();
    while (handle.snapshot()->total_points < acked) {
      ASSERT_LT(std::chrono::steady_clock::now() - start, kDeadline)
          << "acked value invisible past the staleness bound (round " << round
          << ", acked " << acked << ", visible "
          << handle.snapshot()->total_points << ")";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

// ---------------------------------------------------------------------------
// Explicit publication points: FLUSH, BUILD, and SAVE all make pending
// appends visible immediately.
TEST(PublicationTest, FlushVerbPublishesPendingAppends) {
  QueryEngine engine;
  StreamConfig config = SmallConfig();
  config.publish_staleness_ms = 60'000;  // coalesce far past the test
  ASSERT_TRUE(engine.CreateStream("s", config).ok());

  ASSERT_TRUE(engine.Execute("APPEND s 1 2 3").ok());
  EXPECT_EQ(SnapshotPoints(engine, "s"), 0);  // coalesced, not yet visible
  EXPECT_EQ(engine.Execute("FLUSH s").value(), "flushed 1 stream(s)");
  EXPECT_EQ(SnapshotPoints(engine, "s"), 3);
  // Nothing pending: a second flush is a no-op, in both forms.
  EXPECT_EQ(engine.Execute("FLUSH s").value(), "flushed 0 stream(s)");
  EXPECT_EQ(engine.Execute("FLUSH").value(), "flushed 0 stream(s)");
  // Errors: unknown stream, too many arguments.
  EXPECT_FALSE(engine.Execute("FLUSH nosuch").ok());
  EXPECT_FALSE(engine.Execute("FLUSH s extra").ok());
}

TEST(PublicationTest, BuildPublishesPendingAppends) {
  QueryEngine engine;
  StreamConfig config = SmallConfig(16, 4);
  config.publish_staleness_ms = 60'000;
  ASSERT_TRUE(engine.CreateStream("s", config).ok());
  ASSERT_TRUE(engine.Execute("APPEND s 1 2 3 4").ok());
  EXPECT_EQ(SnapshotPoints(engine, "s"), 0);
  ASSERT_TRUE(engine.Execute("BUILD s").ok());
  EXPECT_EQ(SnapshotPoints(engine, "s"), 4);
}

TEST(PublicationTest, SavePublishesPendingAppends) {
  QueryEngine engine;
  StreamConfig config = SmallConfig(16, 4);
  config.publish_staleness_ms = 60'000;
  ASSERT_TRUE(engine.CreateStream("s", config).ok());
  ASSERT_TRUE(engine.Execute("APPEND s 1 2 3").ok());
  EXPECT_EQ(SnapshotPoints(engine, "s"), 0);
  const std::string path = ::testing::TempDir() + "/publication_test.shcp";
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());
  EXPECT_EQ(SnapshotPoints(engine, "s"), 3);
  // And the checkpoint itself carries the flushed state.
  QueryEngine other;
  ASSERT_TRUE(other.LoadCheckpoint(path).ok());
  EXPECT_EQ(SnapshotPoints(other, "s"), 3);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Copy-on-write sections: a republish that changed nothing shares both the
// window section and the GK summary with the previous snapshot; an append
// replaces exactly the sections it touched.
TEST(PublicationTest, RepublishSharesUnchangedSections) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig(16, 4)).ok());
  ASSERT_TRUE(engine.Execute("APPEND s 1 2 3 4 5").ok());
  const StreamHandle handle = engine.Stream("s").value();
  const std::shared_ptr<const QuerySnapshot> first = handle.snapshot();

  // RefreshAll republishes without any append in between: both expensive
  // sections are shared, only the cheap scalar fields are fresh.
  engine.RefreshAll();
  const std::shared_ptr<const QuerySnapshot> second = handle.snapshot();
  EXPECT_GT(second->version, first->version);
  EXPECT_EQ(second->window.get(), first->window.get());
  EXPECT_EQ(second->quantiles.get(), first->quantiles.get());

  // An append invalidates the window and quantile sections.
  ASSERT_TRUE(engine.Execute("APPEND s 6").ok());
  const std::shared_ptr<const QuerySnapshot> third = handle.snapshot();
  EXPECT_NE(third->window.get(), second->window.get());
  EXPECT_NE(third->quantiles.get(), second->quantiles.get());
  // The superseded snapshots still answer from their own frozen sections.
  EXPECT_EQ(first->total_points, 5);
  EXPECT_EQ(first->histogram().RangeSum(0, 5), 15.0);
  EXPECT_EQ(third->histogram().RangeSum(0, 6), 21.0);
}

// The FM sketch's distinct estimate is recomputed only when a bitmap bit
// actually flipped; re-appending seen values republishes the cached value.
TEST(PublicationTest, DistinctEstimateCachedUntilSketchMutates) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig(16, 4)).ok());
  ASSERT_TRUE(engine.Execute("APPEND s 7").ok());
  const StreamHandle handle = engine.Stream("s").value();
  const int64_t mutations_after_first =
      handle.stream().distinct()->mutations();
  EXPECT_GE(mutations_after_first, 1);
  const double estimate = handle.snapshot()->distinct_estimate;

  // The same value again: no new bitmap bit, no recompute, same estimate.
  ASSERT_TRUE(engine.Execute("APPEND s 7 7 7").ok());
  EXPECT_EQ(handle.stream().distinct()->mutations(), mutations_after_first);
  EXPECT_EQ(handle.snapshot()->distinct_estimate, estimate);
  EXPECT_EQ(engine.Execute("DISTINCT s").value(),
            engine.Execute("DISTINCT s").value());
}

// ---------------------------------------------------------------------------
// Telemetry: publishes, coalesced skips, and staleness land in STATS.
TEST(PublicationTest, PublishTelemetrySurfacesInStats) {
  QueryEngine engine;
  StreamConfig config = SmallConfig();
  config.publish_staleness_ms = 60'000;
  ASSERT_TRUE(engine.CreateStream("s", config).ok());
  ASSERT_TRUE(engine.Execute("APPEND s 1").ok());  // coalesced: a skip
  ASSERT_TRUE(engine.Execute("FLUSH s").ok());     // publish, with staleness

  const PublishCounters counters =
      engine.Stream("s").value().stream().publish_stats().Read();
  EXPECT_GE(counters.publishes, 2);  // CREATE's initial publish + the flush
  EXPECT_GE(counters.skipped, 1);
  EXPECT_GE(counters.max_staleness_us, 0);

  const std::string per_stream = engine.Execute("STATS s").value();
  EXPECT_NE(per_stream.find("publish count="), std::string::npos)
      << per_stream;
  EXPECT_NE(per_stream.find("skipped="), std::string::npos) << per_stream;
  const std::string engine_wide = engine.Execute("STATS").value();
  EXPECT_NE(engine_wide.find("publish count="), std::string::npos)
      << engine_wide;
}

// The DESCRIBE line is composed lazily from the frozen seed — byte-identical
// to the live Describe() at publish time, and stable on the held snapshot.
TEST(PublicationTest, LazyDescribeMatchesLiveDescribe) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig(16, 4)).ok());
  ASSERT_TRUE(engine.Execute("APPEND s 1 2 3 4 5 6 7 8").ok());
  const StreamHandle handle = engine.Stream("s").value();
  const std::string described = engine.Execute("DESCRIBE s").value();
  EXPECT_EQ(described, handle.stream().Describe());
  // The held snapshot's line does not drift when the stream moves on.
  const std::shared_ptr<const QuerySnapshot> held = handle.snapshot();
  ASSERT_TRUE(engine.Execute("APPEND s 9").ok());
  EXPECT_EQ(held->describe(), described);
}

// Runtime retuning: a stream created strict can be switched to coalescing
// (and back) through the C++ API.
TEST(PublicationTest, RuntimeStalenessRetune) {
  QueryEngine engine;
  ASSERT_TRUE(engine.CreateStream("s", SmallConfig()).ok());
  const StreamHandle handle = engine.Stream("s").value();
  EXPECT_EQ(handle.stream().publish_staleness_ms(), 0);
  {
    const auto lock = handle.LockWriter();
    handle.stream().set_publish_staleness_ms(60'000);
  }
  ASSERT_TRUE(engine.Execute("APPEND s 1 2").ok());
  EXPECT_EQ(SnapshotPoints(engine, "s"), 0);
  EXPECT_TRUE(handle.stream().PublishPending());
  {
    const auto lock = handle.LockWriter();
    handle.stream().set_publish_staleness_ms(-5);  // clamps to strict
  }
  EXPECT_EQ(handle.stream().publish_staleness_ms(), 0);
  ASSERT_TRUE(engine.Execute("APPEND s 3").ok());
  EXPECT_EQ(SnapshotPoints(engine, "s"), 3);  // publish covered the backlog
}

}  // namespace
}  // namespace streamhist
