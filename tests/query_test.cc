#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/query/estimator.h"
#include "src/query/metrics.h"
#include "src/query/workload.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

TEST(WorkloadTest, UniformQueriesAreInBounds) {
  Random rng(1);
  const auto queries = GenerateUniformRangeQueries(1000, 500, rng);
  ASSERT_EQ(queries.size(), 500u);
  for (const RangeQuery& q : queries) {
    EXPECT_GE(q.lo, 0);
    EXPECT_LT(q.lo, 1000);
    EXPECT_GT(q.span(), 0);
    EXPECT_LE(q.hi, 1000);
  }
}

TEST(WorkloadTest, SpanBoundedQueriesRespectBounds) {
  Random rng(2);
  const auto queries = GenerateSpanBoundedQueries(1000, 300, 10, 50, rng);
  for (const RangeQuery& q : queries) {
    EXPECT_GE(q.span(), 10);
    EXPECT_LE(q.span(), 50);
    EXPECT_GE(q.lo, 0);
    EXPECT_LE(q.hi, 1000);
  }
}

TEST(WorkloadTest, DeterministicGivenRngSeed) {
  Random rng_a(7);
  Random rng_b(7);
  const auto a = GenerateUniformRangeQueries(100, 50, rng_a);
  const auto b = GenerateUniformRangeQueries(100, 50, rng_b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].hi, b[i].hi);
  }
}

TEST(EstimatorTest, ExactEstimatorAnswersExactly) {
  const std::vector<double> data{1, 2, 3, 4, 5};
  ExactEstimator exact(data);
  EXPECT_EQ(exact.domain_size(), 5);
  EXPECT_DOUBLE_EQ(exact.RangeSum(0, 5), 15.0);
  EXPECT_DOUBLE_EQ(exact.RangeSum(1, 3), 5.0);
  EXPECT_DOUBLE_EQ(exact.Estimate(2), 3.0);
  EXPECT_EQ(exact.name(), "exact");
}

TEST(EstimatorTest, HistogramEstimatorDelegates) {
  const std::vector<double> data{1, 1, 9, 9};
  const Histogram h = BuildVOptimalHistogram(data, 2).histogram;
  HistogramEstimator est(&h, "vopt");
  EXPECT_DOUBLE_EQ(est.RangeSum(0, 4), 20.0);
  EXPECT_DOUBLE_EQ(est.Estimate(0), 1.0);
  EXPECT_EQ(est.name(), "vopt");
}

TEST(EstimatorTest, WaveletEstimatorDelegates) {
  const std::vector<double> data(16, 2.0);
  const WaveletSynopsis s = WaveletSynopsis::Build(data, 1);
  WaveletEstimator est(&s);
  EXPECT_NEAR(est.RangeSum(0, 16), 32.0, 1e-9);
  EXPECT_NEAR(est.Estimate(3), 2.0, 1e-9);
}

TEST(MetricsTest, PerfectEstimatorHasZeroError) {
  const std::vector<double> data{5, 6, 7, 8};
  ExactEstimator exact(data);
  Random rng(3);
  const auto queries = GenerateUniformRangeQueries(4, 100, rng);
  const AccuracyReport report = EvaluateRangeSums(exact, exact, queries);
  EXPECT_EQ(report.num_queries, 100);
  EXPECT_DOUBLE_EQ(report.mean_absolute_error, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_relative_error, 0.0);
  EXPECT_DOUBLE_EQ(report.max_absolute_error, 0.0);
}

TEST(MetricsTest, KnownErrorsAreAveraged) {
  const std::vector<double> truth{0, 0};
  const std::vector<double> approx_data{1, 3};
  ExactEstimator exact(truth);
  ExactEstimator approx(approx_data);
  // Two single-point queries with errors 1 and 3.
  const std::vector<RangeQuery> queries{{0, 1}, {1, 2}};
  const AccuracyReport report = EvaluateRangeSums(exact, approx, queries);
  EXPECT_DOUBLE_EQ(report.mean_absolute_error, 2.0);
  EXPECT_DOUBLE_EQ(report.max_absolute_error, 3.0);
  EXPECT_NEAR(report.root_mean_squared_error, std::sqrt(5.0), 1e-12);
}

TEST(MetricsTest, PointEvaluationCoversDomain) {
  const std::vector<double> data{1, 2, 3, 4, 5, 6};
  const Histogram h = BuildVOptimalHistogram(data, 6).histogram;
  ExactEstimator exact(data);
  HistogramEstimator approx(&h);
  const AccuracyReport report = EvaluateAllPoints(exact, approx);
  EXPECT_EQ(report.num_queries, 6);
  EXPECT_NEAR(report.mean_absolute_error, 0.0, 1e-9);
}

TEST(MetricsTest, BetterSynopsisScoresBetter) {
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kPiecewiseConstant, 512, 13);
  ExactEstimator exact(data);
  Random rng(5);
  const auto queries = GenerateUniformRangeQueries(512, 400, rng);

  const Histogram h4 = BuildVOptimalHistogram(data, 4).histogram;
  const Histogram h32 = BuildVOptimalHistogram(data, 32).histogram;
  HistogramEstimator e4(&h4);
  HistogramEstimator e32(&h32);
  EXPECT_LE(EvaluateRangeSums(exact, e32, queries).mean_absolute_error,
            EvaluateRangeSums(exact, e4, queries).mean_absolute_error + 1e-9);
}

}  // namespace
}  // namespace streamhist
