#include "src/selectivity/value_histogram.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

std::vector<double> SkewedData(int64_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<double> data;
  for (int64_t i = 0; i < n; ++i) {
    data.push_back(static_cast<double>(rng.Zipf(1000, 1.1)));
  }
  return data;
}

TEST(ValueHistogramTest, MakeValidatesStructure) {
  EXPECT_FALSE(ValueHistogram::Make({{5, 5, 1}}).ok());      // empty range
  EXPECT_FALSE(ValueHistogram::Make({{0, 5, -1}}).ok());     // negative count
  EXPECT_FALSE(
      ValueHistogram::Make({{0, 5, 1}, {6, 8, 1}}).ok());    // gap
  EXPECT_TRUE(ValueHistogram::Make({{0, 5, 1}, {5, 8, 1}}).ok());
}

TEST(ValueHistogramTest, UniformAssumptionInterpolates) {
  ValueHistogram h =
      ValueHistogram::Make({ValueBucket{0, 10, 100}}).value();
  EXPECT_DOUBLE_EQ(h.EstimateCountInRange(0, 10), 100.0);
  EXPECT_DOUBLE_EQ(h.EstimateCountInRange(0, 5), 50.0);
  EXPECT_DOUBLE_EQ(h.EstimateCountInRange(2.5, 7.5), 50.0);
  EXPECT_DOUBLE_EQ(h.EstimateCountInRange(-5, 0), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateSelectivity(0, 2), 0.2);
}

TEST(FrequencyDistributionTest, ExactCounts) {
  const std::vector<double> data{1, 2, 2, 3, 10};
  FrequencyDistribution freq(data);
  EXPECT_EQ(freq.total(), 5);
  EXPECT_EQ(freq.CountInRange(2, 3), 2);
  EXPECT_EQ(freq.CountInRange(0, 100), 5);
  EXPECT_EQ(freq.CountInRange(4, 10), 0);
  EXPECT_DOUBLE_EQ(freq.min(), 1.0);
  EXPECT_DOUBLE_EQ(freq.max(), 10.0);
}

TEST(EquiWidthValueTest, CountsPartitionTheData) {
  const std::vector<double> data = SkewedData(5000, 3);
  ValueHistogram h = BuildEquiWidthValueHistogram(data, 20);
  EXPECT_DOUBLE_EQ(h.total_count(), 5000.0);
  // Whole-domain query returns everything.
  EXPECT_NEAR(h.EstimateCountInRange(0, 2000), 5000.0, 1e-6);
}

TEST(EquiDepthValueTest, BucketsHoldEqualCounts) {
  Random rng(5);
  std::vector<double> data;
  for (int i = 0; i < 10000; ++i) data.push_back(rng.UniformDouble(0, 1000));
  ValueHistogram h = BuildEquiDepthValueHistogram(data, 10);
  ASSERT_EQ(h.num_buckets(), 10);
  for (const ValueBucket& b : h.buckets()) {
    EXPECT_NEAR(b.count, 1000.0, 1.0);
  }
  EXPECT_DOUBLE_EQ(h.total_count(), 10000.0);
}

TEST(EquiDepthValueTest, HandlesHeavyDuplicates) {
  std::vector<double> data(900, 7.0);
  for (int i = 0; i < 100; ++i) data.push_back(100.0 + i);
  ValueHistogram h = BuildEquiDepthValueHistogram(data, 10);
  EXPECT_TRUE(h.num_buckets() >= 1);
  EXPECT_DOUBLE_EQ(h.total_count(), 1000.0);
  // All the mass at value 7 must be recoverable.
  EXPECT_GT(h.EstimateCountInRange(6.9, 7.1), 800.0);
}

TEST(StreamingEquiDepthTest, MatchesOfflineWithinEpsilon) {
  Random rng(9);
  GKSummary gk = GKSummary::Create(0.01).value();
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.Gaussian(500, 100);
    data.push_back(v);
    gk.Insert(v);
  }
  ValueHistogram streaming = BuildStreamingEquiDepthHistogram(gk, 10);
  FrequencyDistribution truth(data);

  EXPECT_NEAR(streaming.total_count(), 20000.0, 1.0);
  // Every bucket's true count should be near N/B, within the GK rank slack
  // on each boundary (2 boundaries, eps*N each) plus uniformity noise.
  for (const ValueBucket& b : streaming.buckets()) {
    const double true_count =
        static_cast<double>(truth.CountInRange(b.lo, b.hi));
    EXPECT_NEAR(true_count, 2000.0, 2 * 0.01 * 20000 + 50)
        << "bucket [" << b.lo << "," << b.hi << ")";
  }
}

TEST(VOptimalValueTest, SelectivityBeatsEquiWidthOnSkewedData) {
  const std::vector<double> data = SkewedData(20000, 11);
  FrequencyDistribution truth(data);
  ValueHistogram vopt = BuildVOptimalValueHistogram(data, 16, 1000);
  ValueHistogram equi = BuildEquiWidthValueHistogram(data, 16);

  Random rng(13);
  double vopt_err = 0.0, equi_err = 0.0;
  for (int q = 0; q < 300; ++q) {
    const double lo = rng.UniformDouble(0, 900);
    const double hi = lo + rng.UniformDouble(1, 100);
    const double t = static_cast<double>(truth.CountInRange(lo, hi));
    vopt_err += std::abs(vopt.EstimateCountInRange(lo, hi) - t);
    equi_err += std::abs(equi.EstimateCountInRange(lo, hi) - t);
  }
  EXPECT_LT(vopt_err, equi_err);
}

TEST(VOptimalValueTest, TotalCountPreserved) {
  const std::vector<double> data = SkewedData(5000, 17);
  ValueHistogram h = BuildVOptimalValueHistogram(data, 8, 500);
  EXPECT_DOUBLE_EQ(h.total_count(), 5000.0);
  EXPECT_LE(h.num_buckets(), 8);
}

TEST(ValueHistogramTest, ToStringRenders) {
  ValueHistogram h = ValueHistogram::Make({ValueBucket{0, 2, 5}}).value();
  EXPECT_EQ(h.ToString(), "[0,2)=5");
}

}  // namespace
}  // namespace streamhist
