// Round-trip and adversarial-bytes coverage for the framed serialization
// format (util/framing.h) and every synopsis Serialize/Deserialize pair.
// The adversarial sections are the PR's core safety claim: hostile bytes —
// truncation at every prefix length, single-bit flips anywhere, wrong
// magic/version — must yield InvalidArgument, never a crash or an abort.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/agglomerative.h"
#include "src/core/fixed_window.h"
#include "src/core/histogram_io.h"
#include "src/engine/managed_stream.h"
#include "src/quantile/gk_summary.h"
#include "src/sketch/fm_sketch.h"
#include "src/stream/sliding_window.h"
#include "src/util/framing.h"
#include "src/util/random.h"
#include "src/util/wal.h"

namespace streamhist {
namespace {

TEST(Crc32cTest, MatchesKnownVectors) {
  // RFC 3720 appendix B.4 test vector: 32 zero bytes.
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  // "123456789" is the classic check value for CRC32C.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  // Chaining two halves must equal one pass.
  const std::string data = "approximate data stream";
  EXPECT_EQ(Crc32c(data.substr(4), Crc32c(data.substr(0, 4))), Crc32c(data));
}

TEST(ByteReaderTest, RefusesUnderruns) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.bytes());
  uint64_t u64 = 0;
  EXPECT_FALSE(r.ReadU64(&u64));  // only 4 bytes present
  uint32_t u32 = 0;
  EXPECT_TRUE(r.ReadU32(&u32));
  EXPECT_EQ(u32, 7u);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.ReadU32(&u32));
}

TEST(ByteWriterTest, LongDoubleRoundTripsExactly) {
  // A value whose mantissa exceeds double precision: 1 + 2^-60.
  const long double v = 1.0L + 0x1p-60L;
  ByteWriter w;
  w.PutLongDouble(v);
  ByteReader r(w.bytes());
  long double back = 0.0L;
  ASSERT_TRUE(r.ReadLongDouble(&back));
  EXPECT_EQ(back, v);
}

TEST(FrameTest, RoundTripAndExactSpan) {
  const std::string frame = WrapFrame(0xAB12CD34, 3, "payload");
  const auto view = UnwrapFrame(frame, 0xAB12CD34, "test");
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->version, 3u);
  EXPECT_EQ(view->payload, "payload");
  EXPECT_FALSE(UnwrapFrame(frame + "x", 0xAB12CD34, "test").ok());
  EXPECT_FALSE(UnwrapFrame(frame, 0xAB12CD35, "test").ok());
}

TEST(FrameTest, ReadFrameResynchronizesAfterCrcMismatch) {
  std::string container = WrapFrame(0x11, 1, "first") +
                          WrapFrame(0x11, 1, "second");
  container[20] ^= 0x01;  // corrupt the first frame's payload
  ByteReader reader(container);
  const auto first = ReadFrame(reader, 0x11, "test");
  EXPECT_FALSE(first.ok());
  // The reader skipped the damaged frame; the second one still parses.
  const auto second = ReadFrame(reader, 0x11, "test");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->payload, "second");
  EXPECT_TRUE(reader.AtEnd());
}

// ---------------------------------------------------------------------------
// Round trips: Deserialize(Serialize(x)) must answer every query identically.

std::vector<double> TestSeries(int n) {
  Random rng(42);
  std::vector<double> series;
  series.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    series.push_back(rng.UniformDouble() * 100.0 + (i % 7 == 0 ? 50.0 : 0.0));
  }
  return series;
}

TEST(SlidingWindowSerializationTest, RoundTripIsBitIdentical) {
  SlidingWindow window(64);
  for (double v : TestSeries(300)) window.Append(v);

  const auto restored = SlidingWindow::Deserialize(window.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), window.size());
  EXPECT_EQ(restored->capacity(), window.capacity());
  EXPECT_EQ(restored->total_appended(), window.total_appended());
  for (int64_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ((*restored)[i], window[i]) << "index " << i;
  }
  for (int64_t lo = 0; lo < window.size(); lo += 7) {
    for (int64_t hi = lo + 1; hi <= window.size(); hi += 5) {
      EXPECT_EQ(restored->Sum(lo, hi), window.Sum(lo, hi));
      EXPECT_EQ(restored->SqError(lo, hi), window.SqError(lo, hi));
    }
  }
}

TEST(SlidingWindowSerializationTest, RestoredWindowIngestsIdentically) {
  SlidingWindow window(32);
  for (double v : TestSeries(100)) window.Append(v);
  auto restored = SlidingWindow::Deserialize(window.Serialize());
  ASSERT_TRUE(restored.ok());
  // Drive both far enough to cross several rebases.
  for (double v : TestSeries(200)) {
    window.Append(v);
    restored->Append(v);
  }
  EXPECT_EQ(restored->Sum(0, 32), window.Sum(0, 32));
  EXPECT_EQ(restored->SqError(3, 29), window.SqError(3, 29));
}

TEST(SlidingWindowSerializationTest, PartiallyFilledAndEmptyWindows) {
  SlidingWindow empty(16);
  auto restored_empty = SlidingWindow::Deserialize(empty.Serialize());
  ASSERT_TRUE(restored_empty.ok());
  EXPECT_EQ(restored_empty->size(), 0);

  SlidingWindow partial(16);
  partial.Append(1.5);
  partial.Append(-2.5);
  auto restored = SlidingWindow::Deserialize(partial.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2);
  EXPECT_EQ((*restored)[0], 1.5);
  EXPECT_EQ((*restored)[1], -2.5);
}

TEST(FixedWindowSerializationTest, RoundTripPreservesQueries) {
  FixedWindowOptions options;
  options.window_size = 64;
  options.num_buckets = 8;
  options.epsilon = 0.15;
  FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();
  for (double v : TestSeries(500)) fw.Append(v);

  auto restored = FixedWindowHistogram::Deserialize(fw.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->options().window_size, 64);
  EXPECT_EQ(restored->ApproxError(), fw.ApproxError());
  for (int64_t lo = 0; lo < 64; lo += 9) {
    EXPECT_EQ(restored->RangeSum(lo, 64), fw.RangeSum(lo, 64));
  }
  EXPECT_EQ(restored->Extract().ToString(), fw.Extract().ToString());
}

TEST(AgglomerativeSerializationTest, RoundTripPreservesQueries) {
  ApproxHistogramOptions options;
  options.num_buckets = 8;
  options.epsilon = 0.2;
  AgglomerativeHistogram h = AgglomerativeHistogram::Create(options).value();
  for (double v : TestSeries(700)) h.Append(v);

  auto restored = AgglomerativeHistogram::Deserialize(h.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), h.size());
  EXPECT_EQ(restored->ApproxError(), h.ApproxError());
  EXPECT_EQ(restored->Extract().ToString(), h.Extract().ToString());
  // Future appends must also behave identically.
  for (double v : TestSeries(100)) {
    h.Append(v);
    restored->Append(v);
  }
  EXPECT_EQ(restored->Extract().ToString(), h.Extract().ToString());
}

TEST(GkSummarySerializationTest, RoundTripPreservesQuantiles) {
  GKSummary gk = GKSummary::Create(0.02).value();
  for (double v : TestSeries(2000)) gk.Insert(v);

  auto restored = GKSummary::Deserialize(gk.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), gk.size());
  for (double phi : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_EQ(restored->Quantile(phi), gk.Quantile(phi)) << "phi=" << phi;
  }
}

TEST(GkSummarySerializationTest, EmptySummaryRoundTrips) {
  GKSummary gk = GKSummary::Create(0.05).value();
  auto restored = GKSummary::Deserialize(gk.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), 0);
}

TEST(FmSketchSerializationTest, RoundTripPreservesEstimateAndMerge) {
  FMSketch sketch = FMSketch::Create(64, /*seed=*/7).value();
  for (double v : TestSeries(1000)) sketch.AddValue(v);

  auto restored = FMSketch::Deserialize(sketch.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->EstimateDistinct(), sketch.EstimateDistinct());
  EXPECT_EQ(restored->items_added(), sketch.items_added());
  // Same seed and shape: merging back must still work.
  EXPECT_TRUE(restored->Merge(sketch).ok());
  EXPECT_EQ(restored->EstimateDistinct(), sketch.EstimateDistinct());
}

TEST(ManagedStreamSerializationTest, SnapshotRestoreAnswersIdentically) {
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  config.epsilon = 0.2;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(600)) stream.Append(v);
  stream.Append(std::numeric_limits<double>::quiet_NaN());  // quarantined

  auto restored = ManagedStream::Restore(stream.Snapshot());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->total_points(), stream.total_points());
  EXPECT_EQ(restored->dropped_nonfinite(), 1);
  EXPECT_EQ(restored->window_histogram().RangeSum(0, 64),
            stream.window_histogram().RangeSum(0, 64));
  EXPECT_EQ(restored->quantiles()->Quantile(0.5),
            stream.quantiles()->Quantile(0.5));
  EXPECT_EQ(restored->distinct()->EstimateDistinct(),
            stream.distinct()->EstimateDistinct());
  EXPECT_EQ(restored->lifetime_histogram()->Extract().ToString(),
            stream.lifetime_histogram()->Extract().ToString());
}

TEST(ManagedStreamSerializationTest, SnapshotCarriesBuildMode) {
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  config.build_mode = WindowBuildMode::kApprox;
  config.build_delta = 0.25;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(100)) stream.Append(v);

  auto restored = ManagedStream::Restore(stream.Snapshot());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->config().build_mode, WindowBuildMode::kApprox);
  EXPECT_EQ(restored->config().build_delta, 0.25);
  // The restored stream's offline BUILD answers identically.
  const WindowBuildReport a = stream.BuildWindowHistogram();
  const WindowBuildReport b = restored->BuildWindowHistogram();
  EXPECT_EQ(a.sse, b.sse);
  EXPECT_EQ(a.bound_factor, b.bound_factor);
  EXPECT_EQ(a.histogram.ToString(), b.histogram.ToString());
}

TEST(ManagedStreamSerializationTest, DroppedNonfiniteSurvivesRoundTrip) {
  // The quarantine counter is part of the stream's observable state (APPEND
  // replies and DESCRIBE report it); a checkpoint cycle must not reset it.
  StreamConfig config;
  config.window_size = 32;
  config.num_buckets = 4;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(50)) stream.Append(v);
  stream.Append(std::numeric_limits<double>::quiet_NaN());
  stream.Append(std::numeric_limits<double>::infinity());
  stream.Append(-std::numeric_limits<double>::infinity());
  ASSERT_EQ(stream.dropped_nonfinite(), 3);

  auto once = ManagedStream::Restore(stream.Snapshot());
  ASSERT_TRUE(once.ok()) << once.status();
  EXPECT_EQ(once->dropped_nonfinite(), 3);
  // And through a second generation, to catch a save-side reset.
  auto twice = ManagedStream::Restore(once->Snapshot());
  ASSERT_TRUE(twice.ok()) << twice.status();
  EXPECT_EQ(twice->dropped_nonfinite(), 3);
}

// v6 stream payload layout (bytes before the window blob):
//   0..34   config through keep_distinct (8+8+8+1+1+8+1)
//   35..43  v2 build-mode fields (bool + f64)
//   44..51  dropped_nonfinite (i64)
//   52..59  degraded_builds (i64, new in v3)
//   ...     synopsis blobs (window / quantiles / distinct)
//   tail    length-prefixed query-stats block (new in v4): a u64 length
//           followed by QueryStats::SerializedBytes() bytes
//   tail    applied WAL LSN (i64, new in v5)
//   tail    length-prefixed publish-stats block (new in v6)
// Older payloads are fabricated below by erasing the fields their version
// predates, per the EXPERIMENTS.md version policy: the previous blob
// versions must stay readable for a release cycle.
constexpr uint32_t kStreamMagic = 0x53484D53;  // "SHMS"

// Bytes the v4 stats tail adds to the end of the payload.
constexpr size_t kStatsTailBytes = 8 + QueryStats::SerializedBytes();
// Bytes the v5 WAL-LSN tail adds after that.
constexpr size_t kWalTailBytes = 8;
// Bytes the v6 publish-stats tail adds after that.
constexpr size_t kPublishTailBytes = 8 + PublishStats::SerializedBytes();

TEST(ManagedStreamSerializationTest, V1SnapshotsStillLoadWithDefaults) {
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  config.build_mode = WindowBuildMode::kApprox;  // must NOT survive via v1
  config.build_delta = 0.75;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(200)) stream.Append(v);

  const std::string snapshot = stream.Snapshot();
  auto frame = UnwrapFrame(snapshot, kStreamMagic, "stream");
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->version, 6u);
  std::string v1_payload(frame->payload);
  ASSERT_GT(v1_payload.size(),
            60u + kStatsTailBytes + kWalTailBytes + kPublishTailBytes);
  v1_payload.erase(v1_payload.size() - kPublishTailBytes);  // publish (v6)
  v1_payload.erase(v1_payload.size() - kWalTailBytes);  // wal lsn (v5)
  v1_payload.erase(v1_payload.size() - kStatsTailBytes);  // stats tail (v4)
  v1_payload.erase(52, 8);  // degraded_builds (v3)
  v1_payload.erase(35, 9);  // build-mode fields (v2)
  const std::string v1_snapshot = WrapFrame(kStreamMagic, 1, v1_payload);

  auto restored = ManagedStream::Restore(v1_snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // v1 predates both: the restored stream gets the config defaults / zero.
  EXPECT_EQ(restored->config().build_mode, WindowBuildMode::kExact);
  EXPECT_EQ(restored->config().build_delta, 0.1);
  EXPECT_EQ(restored->degraded_builds(), 0);
  // Everything else restored as usual.
  EXPECT_EQ(restored->total_points(), stream.total_points());
  EXPECT_EQ(restored->window_histogram().RangeSum(0, 64),
            stream.window_histogram().RangeSum(0, 64));
}

TEST(ManagedStreamSerializationTest, V2SnapshotsStillLoadWithDefaults) {
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  config.build_mode = WindowBuildMode::kApprox;  // v2 DOES carry this
  config.build_delta = 0.75;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(200)) stream.Append(v);

  const std::string snapshot = stream.Snapshot();
  auto frame = UnwrapFrame(snapshot, kStreamMagic, "stream");
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->version, 6u);
  std::string v2_payload(frame->payload);
  ASSERT_GT(v2_payload.size(),
            60u + kStatsTailBytes + kWalTailBytes + kPublishTailBytes);
  v2_payload.erase(v2_payload.size() - kPublishTailBytes);  // publish (v6)
  v2_payload.erase(v2_payload.size() - kWalTailBytes);  // wal lsn (v5)
  v2_payload.erase(v2_payload.size() - kStatsTailBytes);  // stats tail (v4)
  v2_payload.erase(52, 8);  // degraded_builds (v3)
  const std::string v2_snapshot = WrapFrame(kStreamMagic, 2, v2_payload);

  auto restored = ManagedStream::Restore(v2_snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->config().build_mode, WindowBuildMode::kApprox);
  EXPECT_EQ(restored->config().build_delta, 0.75);
  EXPECT_EQ(restored->degraded_builds(), 0);  // v2 predates the counter
  EXPECT_EQ(restored->total_points(), stream.total_points());
  EXPECT_EQ(restored->window_histogram().RangeSum(0, 64),
            stream.window_histogram().RangeSum(0, 64));
}

TEST(ManagedStreamSerializationTest, V3SnapshotsStillLoadWithEmptyStats) {
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(200)) stream.Append(v);
  stream.stats().Record(QueryVerb::kSum, /*ok=*/true, /*nanos=*/1000);

  const std::string snapshot = stream.Snapshot();
  auto frame = UnwrapFrame(snapshot, kStreamMagic, "stream");
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->version, 6u);
  std::string v3_payload(frame->payload);
  ASSERT_GT(v3_payload.size(),
            kStatsTailBytes + kWalTailBytes + kPublishTailBytes);
  v3_payload.erase(v3_payload.size() - kPublishTailBytes);  // publish (v6)
  v3_payload.erase(v3_payload.size() - kWalTailBytes);  // wal lsn (v5)
  v3_payload.erase(v3_payload.size() - kStatsTailBytes);  // stats tail (v4)
  const std::string v3_snapshot = WrapFrame(kStreamMagic, 3, v3_payload);

  auto restored = ManagedStream::Restore(v3_snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // v3 predates per-verb stats: the restored stream starts with none.
  EXPECT_FALSE(restored->stats().Any());
  EXPECT_EQ(restored->total_points(), stream.total_points());
  EXPECT_EQ(restored->window_histogram().RangeSum(0, 64),
            stream.window_histogram().RangeSum(0, 64));
}

TEST(ManagedStreamSerializationTest, StatsSurviveSnapshotRoundTrip) {
  StreamConfig config;
  config.window_size = 32;
  config.num_buckets = 4;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(40)) stream.Append(v);
  stream.stats().Record(QueryVerb::kSum, /*ok=*/true, /*nanos=*/700);
  stream.stats().Record(QueryVerb::kSum, /*ok=*/true, /*nanos=*/90000);
  stream.stats().Record(QueryVerb::kQuantile, /*ok=*/false, /*nanos=*/50);

  auto restored = ManagedStream::Restore(stream.Snapshot());
  ASSERT_TRUE(restored.ok()) << restored.status();
  const VerbCounters sums = restored->stats().Read(QueryVerb::kSum);
  EXPECT_EQ(sums.count, 2);
  EXPECT_EQ(sums.errors, 0);
  EXPECT_EQ(sums.total_nanos, 90700);
  const VerbCounters quantiles = restored->stats().Read(QueryVerb::kQuantile);
  EXPECT_EQ(quantiles.count, 1);
  EXPECT_EQ(quantiles.errors, 1);
}

TEST(ManagedStreamSerializationTest, NegativeStatsTailIsRejected) {
  StreamConfig config;
  config.window_size = 32;
  config.num_buckets = 4;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(40)) stream.Append(v);
  stream.stats().Record(QueryVerb::kSum, /*ok=*/true, /*nanos=*/1000);

  const std::string snapshot = stream.Snapshot();
  auto frame = UnwrapFrame(snapshot, kStreamMagic, "stream");
  ASSERT_TRUE(frame.ok()) << frame.status();
  std::string payload(frame->payload);
  ASSERT_GT(payload.size(),
            kStatsTailBytes + kWalTailBytes + kPublishTailBytes);
  payload.erase(payload.size() - kPublishTailBytes);  // publish (v6)
  payload.erase(payload.size() - kWalTailBytes);  // wal lsn (v5)
  // Force the first counter in the stats block (SUM's count, right after the
  // u64 length and the two u32 layout constants) to -1.
  const size_t counter_at = payload.size() - kStatsTailBytes + 8 + 4 + 4;
  for (size_t i = 0; i < 8; ++i) payload[counter_at + i] = '\xff';
  const auto restored =
      ManagedStream::Restore(WrapFrame(kStreamMagic, 4, payload));
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(ManagedStreamSerializationTest, V4SnapshotsStillLoadWithZeroLsn) {
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(200)) stream.Append(v);
  stream.set_wal_lsn(99);  // must NOT survive via v4

  const std::string snapshot = stream.Snapshot();
  auto frame = UnwrapFrame(snapshot, kStreamMagic, "stream");
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->version, 6u);
  std::string v4_payload(frame->payload);
  ASSERT_GT(v4_payload.size(), kWalTailBytes + kPublishTailBytes);
  v4_payload.erase(v4_payload.size() - kPublishTailBytes);  // publish (v6)
  v4_payload.erase(v4_payload.size() - kWalTailBytes);  // wal lsn (v5)
  const std::string v4_snapshot = WrapFrame(kStreamMagic, 4, v4_payload);

  auto restored = ManagedStream::Restore(v4_snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // v4 predates the LSN tail: a restored stream replays from scratch.
  EXPECT_EQ(restored->wal_lsn(), 0);
  EXPECT_EQ(restored->total_points(), stream.total_points());
  EXPECT_EQ(restored->window_histogram().RangeSum(0, 64),
            stream.window_histogram().RangeSum(0, 64));
}

TEST(ManagedStreamSerializationTest, WalLsnTailRoundTripsAndFloors) {
  StreamConfig config;
  config.window_size = 32;
  config.num_buckets = 4;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(50)) stream.Append(v);
  stream.set_wal_lsn(42);

  auto restored = ManagedStream::Restore(stream.Snapshot());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->wal_lsn(), 42);

  // Snapshot(floor) stores max(own, floor) — the checkpoint's guarantee
  // that everything at or below the global floor is reflected.
  auto floored = ManagedStream::Restore(stream.Snapshot(/*wal_lsn_floor=*/77));
  ASSERT_TRUE(floored.ok()) << floored.status();
  EXPECT_EQ(floored->wal_lsn(), 77);
  auto kept = ManagedStream::Restore(stream.Snapshot(/*wal_lsn_floor=*/7));
  ASSERT_TRUE(kept.ok()) << kept.status();
  EXPECT_EQ(kept->wal_lsn(), 42);
}

TEST(ManagedStreamSerializationTest, NegativeWalLsnTailIsRejected) {
  StreamConfig config;
  config.window_size = 32;
  config.num_buckets = 4;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(50)) stream.Append(v);

  const std::string snapshot = stream.Snapshot();
  auto frame = UnwrapFrame(snapshot, kStreamMagic, "stream");
  ASSERT_TRUE(frame.ok()) << frame.status();
  std::string payload(frame->payload);
  for (size_t i = payload.size() - kWalTailBytes; i < payload.size(); ++i) {
    payload[i] = '\xff';  // lsn = -1
  }
  const auto restored =
      ManagedStream::Restore(WrapFrame(kStreamMagic, 5, payload));
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(ManagedStreamSerializationTest, V5SnapshotsStillLoadWithZeroPublishStats) {
  StreamConfig config;
  config.window_size = 64;
  config.num_buckets = 8;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(200)) stream.Append(v);

  const std::string snapshot = stream.Snapshot();
  auto frame = UnwrapFrame(snapshot, kStreamMagic, "stream");
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->version, 6u);
  std::string v5_payload(frame->payload);
  ASSERT_GT(v5_payload.size(), kPublishTailBytes);
  v5_payload.erase(v5_payload.size() - kPublishTailBytes);  // publish (v6)
  const std::string v5_snapshot = WrapFrame(kStreamMagic, 5, v5_payload);

  auto restored = ManagedStream::Restore(v5_snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // v5 predates publication telemetry: only the restore's own publish shows.
  EXPECT_EQ(restored->publish_stats().Read().skipped, 0);
  EXPECT_EQ(restored->total_points(), stream.total_points());
  EXPECT_EQ(restored->window_histogram().RangeSum(0, 64),
            stream.window_histogram().RangeSum(0, 64));
}

TEST(ManagedStreamSerializationTest, PublishStatsSurviveSnapshotRoundTrip) {
  StreamConfig config;
  config.window_size = 32;
  config.num_buckets = 4;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(40)) stream.Append(v);
  stream.publish_stats().RecordPublish(/*nanos=*/1500, /*staleness_us=*/250);
  stream.publish_stats().RecordPublish(/*nanos=*/90000, /*staleness_us=*/40);
  stream.publish_stats().RecordSkipped();
  const PublishCounters before = stream.publish_stats().Read();

  auto restored = ManagedStream::Restore(stream.Snapshot());
  ASSERT_TRUE(restored.ok()) << restored.status();
  const PublishCounters after = restored->publish_stats().Read();
  // Restore itself publishes once more on top of the carried counters.
  EXPECT_GE(after.publishes, before.publishes);
  EXPECT_EQ(after.skipped, before.skipped);
  EXPECT_GE(after.max_staleness_us, before.max_staleness_us);
  EXPECT_GE(after.total_nanos, before.total_nanos);
}

TEST(ManagedStreamSerializationTest, NegativePublishTailIsRejected) {
  StreamConfig config;
  config.window_size = 32;
  config.num_buckets = 4;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(40)) stream.Append(v);

  const std::string snapshot = stream.Snapshot();
  auto frame = UnwrapFrame(snapshot, kStreamMagic, "stream");
  ASSERT_TRUE(frame.ok()) << frame.status();
  std::string payload(frame->payload);
  ASSERT_GT(payload.size(), kPublishTailBytes);
  // Force the publishes counter (right after the u64 length and the two u32
  // layout constants of the publish block) to -1.
  const size_t counter_at = payload.size() - kPublishTailBytes + 8 + 4 + 4;
  for (size_t i = 0; i < 8; ++i) payload[counter_at + i] = '\xff';
  const auto restored =
      ManagedStream::Restore(WrapFrame(kStreamMagic, 6, payload));
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(ManagedStreamSerializationTest, NegativeCountersAreRejected) {
  StreamConfig config;
  config.window_size = 32;
  config.num_buckets = 4;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(40)) stream.Append(v);

  const std::string snapshot = stream.Snapshot();
  auto frame = UnwrapFrame(snapshot, kStreamMagic, "stream");
  ASSERT_TRUE(frame.ok()) << frame.status();
  for (const size_t offset : {44u, 52u}) {  // dropped / degraded_builds
    std::string payload(frame->payload);
    for (size_t i = 0; i < 8; ++i) payload[offset + i] = '\xff';  // -1
    const auto restored =
        ManagedStream::Restore(WrapFrame(kStreamMagic, 3, payload));
    EXPECT_FALSE(restored.ok()) << "offset " << offset;
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Adversarial bytes. The driver for these invariants is the checkpoint path:
// whatever the disk hands back, Deserialize must return a clean error.

std::string SampleHistogramBytes() {
  Histogram h =
      Histogram::Make({{0, 10, 1.5}, {10, 25, -2.0}, {25, 40, 7.25}}).value();
  return SerializeHistogram(h);
}

TEST(AdversarialBytesTest, TruncationAtEveryPrefixLength) {
  const std::string bytes = SampleHistogramBytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    const auto result = DeserializeHistogram(bytes.substr(0, len));
    EXPECT_FALSE(result.ok()) << "prefix of length " << len << " parsed";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(AdversarialBytesTest, EverySingleBitFlipIsDetected) {
  const std::string bytes = SampleHistogramBytes();
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = bytes;
      corrupted[byte] ^= static_cast<char>(1 << bit);
      const auto result = DeserializeHistogram(corrupted);
      EXPECT_FALSE(result.ok())
          << "flip of bit " << bit << " in byte " << byte << " parsed";
    }
  }
}

TEST(AdversarialBytesTest, WrongMagicAndVersionAreRejected) {
  const std::string bytes = SampleHistogramBytes();
  {
    // Rewrite the magic and fix up the CRC so only the magic is wrong.
    std::string wrong_magic = bytes;
    wrong_magic[0] = 'X';
    EXPECT_FALSE(DeserializeHistogram(wrong_magic).ok());
  }
  {
    // A structurally valid frame with an unknown version: rebuild it from
    // scratch so the CRC is correct and only the version check can fire.
    const auto frame = UnwrapFrame(bytes, 0x53484947, "histogram");
    ASSERT_TRUE(frame.ok());
    const std::string future =
        WrapFrame(0x53484947, frame->version + 1000, frame->payload);
    const auto result = DeserializeHistogram(future);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(AdversarialBytesTest, RandomGarbageNeverParsesSynopses) {
  Random rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(static_cast<size_t>(rng.UniformInt(0, 256)), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    EXPECT_FALSE(SlidingWindow::Deserialize(garbage).ok());
    EXPECT_FALSE(FixedWindowHistogram::Deserialize(garbage).ok());
    EXPECT_FALSE(AgglomerativeHistogram::Deserialize(garbage).ok());
    EXPECT_FALSE(GKSummary::Deserialize(garbage).ok());
    EXPECT_FALSE(FMSketch::Deserialize(garbage).ok());
    EXPECT_FALSE(ManagedStream::Restore(garbage).ok());
  }
}

TEST(AdversarialBytesTest, BitFlipsOnEverySynopsisBlobAreRejected) {
  StreamConfig config;
  config.window_size = 32;
  config.num_buckets = 4;
  ManagedStream stream = ManagedStream::Create(config).value();
  for (double v : TestSeries(100)) stream.Append(v);
  const std::string blob = stream.Snapshot();
  Random rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = blob;
    const size_t byte =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(blob.size()) - 1));
    corrupted[byte] ^= static_cast<char>(1 << rng.UniformInt(0, 7));
    EXPECT_FALSE(ManagedStream::Restore(corrupted).ok())
        << "flip in byte " << byte << " parsed";
  }
}

// ---------------------------------------------------------------------------
// The same adversarial grid, extended to WAL segment files: whatever a crash
// (or rot) leaves on disk, a scan must classify it — records up to the
// damage parse, the rest is torn tail or counted corruption — and never
// crash or fail structurally.

// Writes `bytes` as the single segment of a fresh WAL directory.
std::string WalDirWithSegment(const std::string& name,
                              const std::string& bytes) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream file(dir + "/wal-00000000000000000001.seg", std::ios::binary);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.close();
  return dir;
}

// A well-formed segment image holding `records` one-byte payload records.
std::string SampleSegmentBytes(int records) {
  const std::string dir = ::testing::TempDir() + "/wal_sample_src";
  std::filesystem::remove_all(dir);
  wal::Options options;
  options.policy = wal::SyncPolicy::kNone;
  auto log = wal::Wal::Open(dir, options, nullptr);
  EXPECT_TRUE(log.ok()) << log.status();
  for (int i = 0; i < records; ++i) {
    EXPECT_TRUE(log.value()->Append(std::string(1, static_cast<char>(i))).ok());
  }
  EXPECT_TRUE(log.value()->Flush().ok());
  log.value().reset();  // close the fd before reading the file back
  std::string bytes;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream file(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    EXPECT_TRUE(bytes.empty()) << "sample WAL spilled into two segments";
    bytes = buffer.str();
  }
  EXPECT_FALSE(bytes.empty());
  return bytes;
}

TEST(WalAdversarialBytesTest, TruncationAtEveryPrefixLengthScansCleanly) {
  const std::string bytes = SampleSegmentBytes(6);
  int64_t prev_records = 0;
  for (size_t len = 0; len <= bytes.size(); ++len) {
    const std::string dir = WalDirWithSegment("wal_prefix_grid",
                                              bytes.substr(0, len));
    wal::OpenReport report;
    int64_t seen = 0;
    const Status status = wal::Wal::Scan(
        dir, [&](int64_t, std::string_view) {
          ++seen;
          return Status::OK();
        },
        &report);
    ASSERT_TRUE(status.ok()) << "prefix " << len << ": " << status;
    // Whole records before the cut all parse — the count never regresses as
    // the prefix grows — and the remainder is torn tail, never a crash.
    EXPECT_EQ(seen, report.records) << "prefix " << len;
    EXPECT_LE(report.records + report.corrupt_records, 6) << "prefix " << len;
    EXPECT_GE(report.records, prev_records) << "prefix " << len;
    prev_records = report.records;
  }
  EXPECT_EQ(prev_records, 6);  // the full image parses completely
}

TEST(WalAdversarialBytesTest, EverySingleBitFlipScansCleanly) {
  const std::string bytes = SampleSegmentBytes(4);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = bytes;
      corrupted[byte] ^= static_cast<char>(1 << bit);
      const std::string dir = WalDirWithSegment("wal_bitflip_grid", corrupted);
      wal::OpenReport report;
      const Status status =
          wal::Wal::Scan(dir, [](int64_t, std::string_view) {
            return Status::OK();
          }, &report);
      ASSERT_TRUE(status.ok())
          << "flip of bit " << bit << " in byte " << byte << ": " << status;
      // One flipped bit damages at most the record it lands in (or, in the
      // header/a length field, tears the tail) — never a crash, and never
      // more than the four records the image holds.
      EXPECT_LE(report.records, 4)
          << "flip of bit " << bit << " in byte " << byte;
      EXPECT_LE(report.corrupt_records, 4)
          << "flip of bit " << bit << " in byte " << byte;
    }
  }
}

TEST(WalAdversarialBytesTest, OpenRepairsEveryTruncationPrefix) {
  // The write path's contract: whatever prefix a crash leaves, Open must
  // truncate the tear, report it, and leave a log that appends cleanly.
  const std::string bytes = SampleSegmentBytes(3);
  for (size_t len = 0; len < bytes.size(); len += 7) {
    const std::string dir = WalDirWithSegment("wal_repair_grid",
                                              bytes.substr(0, len));
    wal::OpenReport report;
    auto log = wal::Wal::Open(dir, wal::Options{}, &report);
    ASSERT_TRUE(log.ok()) << "prefix " << len << ": " << log.status();
    const auto lsn = log.value()->Append("post-repair record");
    ASSERT_TRUE(lsn.ok()) << "prefix " << len << ": " << lsn.status();
    EXPECT_EQ(lsn.value(), report.next_lsn) << "prefix " << len;
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace streamhist
