#include "src/timeseries/similarity.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/timeseries/distance.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

std::vector<Match> BruteRange(const std::vector<std::vector<double>>& series,
                              const std::vector<double>& query,
                              double radius) {
  std::vector<Match> out;
  for (size_t id = 0; id < series.size(); ++id) {
    const double d = Euclidean(query, series[id]);
    if (d <= radius) out.push_back(Match{static_cast<int64_t>(id), d});
  }
  std::sort(out.begin(), out.end(),
            [](const Match& a, const Match& b) { return a.distance < b.distance; });
  return out;
}

class SimilaritySearchTest : public ::testing::TestWithParam<int> {
 protected:
  ReprBuilder BuilderUnderTest() const {
    switch (GetParam()) {
      case 0:
        return MakeApcaBuilder();
      case 1:
        return MakeVOptimalBuilder();
      case 2:
        return MakeAgglomerativeBuilder(0.2);
      default:
        return MakeFixedWindowBuilder(0.2);
    }
  }
};

TEST_P(SimilaritySearchTest, RangeSearchHasNoFalseDismissals) {
  const auto collection = GenerateSeriesCollection(40, 64, 0.7, 11);
  SimilarityIndex index(collection, 6, BuilderUnderTest());
  const std::vector<double> query =
      GenerateSeriesCollection(1, 64, 0.7, 12)[0];

  for (double radius_scale : {0.5, 1.0, 2.0}) {
    // Calibrate the radius off the median distance so matches exist.
    std::vector<double> dists;
    for (const auto& s : collection) dists.push_back(Euclidean(query, s));
    std::nth_element(dists.begin(), dists.begin() + 20, dists.end());
    // Nudge off the exact distance of the 20th series so the test is not
    // sensitive to sqrt-vs-squared rounding at the boundary.
    const double radius = dists[20] * radius_scale + 1e-6;

    SearchStats stats;
    const std::vector<Match> got = index.RangeSearch(query, radius, &stats);
    const std::vector<Match> expected = BruteRange(collection, query, radius);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].series_id, expected[i].series_id);
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
    }
    EXPECT_EQ(stats.answers, static_cast<int64_t>(expected.size()));
    EXPECT_EQ(stats.candidates, stats.answers + stats.false_positives);
  }
}

TEST_P(SimilaritySearchTest, KnnMatchesBruteForce) {
  const auto collection = GenerateSeriesCollection(30, 64, 0.6, 21);
  SimilarityIndex index(collection, 6, BuilderUnderTest());
  const std::vector<double> query =
      GenerateSeriesCollection(1, 64, 0.6, 22)[0];

  for (int64_t k : {1, 3, 10}) {
    SearchStats stats;
    const std::vector<Match> got = index.KnnSearch(query, k, &stats);

    std::vector<Match> expected;
    for (size_t id = 0; id < collection.size(); ++id) {
      expected.push_back(
          Match{static_cast<int64_t>(id), Euclidean(query, collection[id])});
    }
    std::sort(expected.begin(), expected.end(),
              [](const Match& a, const Match& b) {
                return a.distance < b.distance;
              });
    expected.resize(static_cast<size_t>(k));

    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9) << "k=" << k;
    }
    EXPECT_LE(stats.candidates, static_cast<int64_t>(collection.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBuilders, SimilaritySearchTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(SubsequenceTest, ExtractSubsequencesShapes) {
  std::vector<double> series(10);
  for (int i = 0; i < 10; ++i) series[static_cast<size_t>(i)] = i;
  const auto subs = ExtractSubsequences(series, 4, 2);
  ASSERT_EQ(subs.size(), 4u);  // starts 0, 2, 4, 6
  EXPECT_EQ(subs[0], (std::vector<double>{0, 1, 2, 3}));
  EXPECT_EQ(subs[3], (std::vector<double>{6, 7, 8, 9}));
}

TEST(SubsequenceTest, StepOneProducesAllWindows) {
  std::vector<double> series(100, 1.0);
  EXPECT_EQ(ExtractSubsequences(series, 10, 1).size(), 91u);
}

TEST(SubsequenceTest, WindowLargerThanSeriesYieldsNothing) {
  std::vector<double> series(5, 1.0);
  EXPECT_TRUE(ExtractSubsequences(series, 6, 1).empty());
}

TEST(SimilarityIndexTest, RepresentationAccessor) {
  const auto collection = GenerateSeriesCollection(3, 32, 0.9, 31);
  SimilarityIndex index(collection, 4, MakeApcaBuilder());
  EXPECT_EQ(index.num_series(), 3);
  EXPECT_EQ(index.series_length(), 32);
  for (int64_t id = 0; id < 3; ++id) {
    EXPECT_LE(index.representation(id).num_segments(), 4);
    EXPECT_EQ(index.representation(id).domain_size(), 32);
  }
}

}  // namespace
}  // namespace streamhist
