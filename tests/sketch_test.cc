#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/sketch/fm_sketch.h"
#include "src/sketch/l1_sketch.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

TEST(FMSketchTest, CreateValidatesShape) {
  EXPECT_FALSE(FMSketch::Create(0).ok());
  EXPECT_FALSE(FMSketch::Create(3).ok());  // not a power of two
  EXPECT_TRUE(FMSketch::Create(64).ok());
}

TEST(FMSketchTest, EmptySketchEstimatesNearZero) {
  FMSketch s = FMSketch::Create(64).value();
  EXPECT_LT(s.EstimateDistinct(), 100.0);
  EXPECT_EQ(s.items_added(), 0);
}

TEST(FMSketchTest, DuplicatesDoNotGrowTheEstimate) {
  FMSketch s = FMSketch::Create(64).value();
  for (int i = 0; i < 10000; ++i) s.Add(42);
  EXPECT_EQ(s.items_added(), 10000);
  EXPECT_LT(s.EstimateDistinct(), 200.0);  // one distinct key
}

class FMSketchAccuracyTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(FMSketchAccuracyTest, EstimateWithinExpectedError) {
  const auto [distinct, bitmaps] = GetParam();
  // Average over several seeds: FM standard error is ~0.78/sqrt(m) per
  // sketch; the mean over 5 seeds should land well within 35%.
  double total = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FMSketch s = FMSketch::Create(bitmaps, seed).value();
    for (int64_t k = 0; k < distinct; ++k) {
      s.Add(static_cast<uint64_t>(k) * 2654435761ULL + seed);
      s.Add(static_cast<uint64_t>(k) * 2654435761ULL + seed);  // duplicate
    }
    total += s.EstimateDistinct();
  }
  const double mean = total / 5.0;
  EXPECT_NEAR(mean, static_cast<double>(distinct),
              0.35 * static_cast<double>(distinct))
      << "m=" << bitmaps;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FMSketchAccuracyTest,
    ::testing::Combine(::testing::Values(int64_t{1000}, int64_t{20000},
                                         int64_t{100000}),
                       ::testing::Values(int64_t{64}, int64_t{256})));

TEST(FMSketchTest, MergeActsAsUnion) {
  FMSketch a = FMSketch::Create(128, 7).value();
  FMSketch b = FMSketch::Create(128, 7).value();
  for (uint64_t k = 0; k < 5000; ++k) a.Add(k);
  for (uint64_t k = 2500; k < 7500; ++k) b.Add(k);
  ASSERT_TRUE(a.Merge(b).ok());
  // Union has 7500 distinct keys.
  EXPECT_NEAR(a.EstimateDistinct(), 7500.0, 0.35 * 7500.0);
}

TEST(FMSketchTest, MergeRejectsMismatchedShape) {
  FMSketch a = FMSketch::Create(64, 1).value();
  FMSketch b = FMSketch::Create(128, 1).value();
  FMSketch c = FMSketch::Create(64, 2).value();
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(L1SketchTest, CreateValidates) {
  EXPECT_FALSE(L1Sketch::Create(0).ok());
  EXPECT_TRUE(L1Sketch::Create(10).ok());
}

TEST(L1SketchTest, IdenticalStreamsHaveZeroDistance) {
  L1Sketch a = L1Sketch::Create(50).value();
  L1Sketch b = L1Sketch::Create(50).value();
  Random rng(3);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.UniformDouble(-10, 10);
    a.Append(v);
    b.Append(v);
  }
  EXPECT_NEAR(a.EstimateL1Distance(b), 0.0, 1e-9);
}

TEST(L1SketchTest, NormOfSingleCoordinate) {
  L1Sketch s = L1Sketch::Create(401).value();
  s.Update(7, 5.0);
  // ||x||_1 = 5; the median estimator concentrates around it.
  EXPECT_NEAR(s.EstimateL1Norm(), 5.0, 1.5);
}

class L1SketchAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(L1SketchAccuracyTest, DistanceTracksTrueL1) {
  const uint64_t seed = GetParam();
  Random rng(seed);
  const int64_t n = 300;
  std::vector<double> x(n), y(n);
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = rng.UniformDouble(0, 100);
    y[static_cast<size_t>(i)] = rng.UniformDouble(0, 100);
  }
  double true_l1 = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    true_l1 += std::fabs(x[static_cast<size_t>(i)] - y[static_cast<size_t>(i)]);
  }

  L1Sketch sx = L1Sketch::Create(301, seed).value();
  L1Sketch sy = L1Sketch::Create(301, seed).value();
  for (int64_t i = 0; i < n; ++i) {
    sx.Update(i, x[static_cast<size_t>(i)]);
    sy.Update(i, y[static_cast<size_t>(i)]);
  }
  const double est = sx.EstimateL1Distance(sy);
  EXPECT_NEAR(est, true_l1, 0.3 * true_l1) << "true=" << true_l1;
}

INSTANTIATE_TEST_SUITE_P(Seeds, L1SketchAccuracyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(L1SketchTest, LinearityUnderUpdates) {
  // sketch(x) - sketch(y) equals sketch(x - y) coordinate-wise, so distance
  // estimation commutes with moving mass between the sketches.
  L1Sketch a = L1Sketch::Create(101, 9).value();
  L1Sketch b = L1Sketch::Create(101, 9).value();
  a.Update(0, 3.0);
  a.Update(1, -2.0);
  b.Update(0, 1.0);
  // x - y = (2, -2): L1 = 4.
  EXPECT_NEAR(a.EstimateL1Distance(b), 4.0, 2.0);
}

}  // namespace
}  // namespace streamhist
