#include "src/wavelet/sliding_wavelet.h"

#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "src/wavelet/haar.h"
#include "src/wavelet/synopsis.h"

namespace streamhist {
namespace {

TEST(SlidingWaveletTest, CreateValidatesShape) {
  EXPECT_FALSE(SlidingWavelet::Create(0).ok());
  EXPECT_FALSE(SlidingWavelet::Create(3).ok());
  EXPECT_TRUE(SlidingWavelet::Create(1).ok());
  EXPECT_TRUE(SlidingWavelet::Create(64).ok());
}

TEST(SlidingWaveletTest, ExactRangeSumsMatchBruteForceWhileSliding) {
  const int64_t n = 16;
  SlidingWavelet w = SlidingWavelet::Create(n).value();
  std::deque<double> mirror;
  Random rng(3);
  for (int step = 0; step < 300; ++step) {
    const double v = rng.UniformInt(-50, 50);
    w.Append(v);
    mirror.push_back(v);
    if (static_cast<int64_t>(mirror.size()) > n) mirror.pop_front();

    ASSERT_EQ(w.size(), static_cast<int64_t>(mirror.size()));
    for (int t = 0; t < 5; ++t) {
      const int64_t lo = rng.UniformInt(0, w.size());
      const int64_t hi = rng.UniformInt(lo, w.size());
      double expected = 0.0;
      for (int64_t i = lo; i < hi; ++i) {
        expected += mirror[static_cast<size_t>(i)];
      }
      EXPECT_NEAR(w.ExactRangeSum(lo, hi), expected, 1e-7)
          << "step " << step << " range [" << lo << "," << hi << ")";
    }
  }
}

TEST(SlidingWaveletTest, EstimateReturnsWindowValues) {
  SlidingWavelet w = SlidingWavelet::Create(4).value();
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) w.Append(v);
  // Window now holds 3, 4, 5, 6.
  EXPECT_DOUBLE_EQ(w.Estimate(0), 3.0);
  EXPECT_DOUBLE_EQ(w.Estimate(3), 6.0);
}

TEST(SlidingWaveletTest, FullBudgetApproxEqualsExact) {
  const int64_t n = 32;
  SlidingWavelet w = SlidingWavelet::Create(n).value();
  Random rng(7);
  for (int i = 0; i < 100; ++i) w.Append(rng.UniformDouble(0, 100));
  for (int t = 0; t < 50; ++t) {
    const int64_t lo = rng.UniformInt(0, n - 1);
    const int64_t hi = rng.UniformInt(lo, n);
    EXPECT_NEAR(w.ApproxRangeSum(lo, hi, n), w.ExactRangeSum(lo, hi), 1e-6);
  }
}

TEST(SlidingWaveletTest, ApproxMatchesRebuiltSynopsisQuality) {
  // The incremental structure's top-B snapshot answers should be in the same
  // accuracy class as a WaveletSynopsis rebuilt from the window contents
  // (supports differ by the circular rotation, so compare error magnitudes).
  const int64_t n = 128;
  const int64_t b = 12;
  SlidingWavelet w = SlidingWavelet::Create(n).value();
  std::deque<double> mirror;
  Random rng(11);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.UniformInt(0, 1000);
    w.Append(v);
    mirror.push_back(v);
    if (static_cast<int64_t>(mirror.size()) > n) mirror.pop_front();
  }
  const std::vector<double> window(mirror.begin(), mirror.end());
  const WaveletSynopsis rebuilt = WaveletSynopsis::Build(window, b);

  double incr_err = 0.0, rebuilt_err = 0.0;
  for (int t = 0; t < 200; ++t) {
    const int64_t lo = rng.UniformInt(0, n - 1);
    const int64_t hi = rng.UniformInt(lo + 1, n);
    double truth = 0.0;
    for (int64_t i = lo; i < hi; ++i) truth += window[static_cast<size_t>(i)];
    incr_err += std::abs(w.ApproxRangeSum(lo, hi, b) - truth);
    rebuilt_err += std::abs(rebuilt.RangeSum(lo, hi) - truth);
  }
  // Same class: within 3x of each other (rotation changes which coefficients
  // are large, so exact parity is not expected).
  EXPECT_LT(incr_err, 3.0 * rebuilt_err + 1e-6);
  EXPECT_LT(rebuilt_err, 3.0 * incr_err + 1e-6);
}

TEST(SlidingWaveletTest, CoefficientUpdatesAreLogarithmicPerAppend) {
  const int64_t n = 1024;  // log2(n) = 10
  SlidingWavelet w = SlidingWavelet::Create(n).value();
  Random rng(13);
  const int64_t appends = 5000;
  for (int64_t i = 0; i < appends; ++i) w.Append(rng.UniformDouble(0, 10));
  // 11 updates per append (average + 10 path details).
  EXPECT_EQ(w.coefficient_updates(), appends * 11);
}

TEST(SlidingWaveletTest, InternalCoefficientsMatchBatchTransform) {
  // After arbitrary slides, exact range sums must agree with a from-scratch
  // Haar transform of the physical buffer — proving the incremental updates
  // maintain the same tree.
  const int64_t n = 64;
  SlidingWavelet w = SlidingWavelet::Create(n).value();
  Random rng(17);
  std::deque<double> mirror;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.UniformInt(-100, 100);
    w.Append(v);
    mirror.push_back(v);
    if (static_cast<int64_t>(mirror.size()) > n) mirror.pop_front();
  }
  double total = 0.0;
  for (double v : mirror) total += v;
  EXPECT_NEAR(w.ExactRangeSum(0, n), total, 1e-7);
}

TEST(SlidingWaveletTest, SingleSlotWindow) {
  SlidingWavelet w = SlidingWavelet::Create(1).value();
  w.Append(5.0);
  w.Append(9.0);
  EXPECT_EQ(w.size(), 1);
  EXPECT_DOUBLE_EQ(w.ExactRangeSum(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(w.ApproxRangeSum(0, 1, 1), 9.0);
}

}  // namespace
}  // namespace streamhist
