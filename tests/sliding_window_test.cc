#include "src/stream/sliding_window.h"

#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "src/stream/sources.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

TEST(SlidingWindowTest, FillsToCapacityThenSlides) {
  SlidingWindow w(3);
  EXPECT_EQ(w.size(), 0);
  w.Append(1);
  w.Append(2);
  EXPECT_EQ(w.size(), 2);
  EXPECT_FALSE(w.full());
  w.Append(3);
  EXPECT_TRUE(w.full());
  w.Append(4);  // evicts 1
  EXPECT_EQ(w.size(), 3);
  EXPECT_DOUBLE_EQ(w[0], 2);
  EXPECT_DOUBLE_EQ(w[1], 3);
  EXPECT_DOUBLE_EQ(w[2], 4);
  EXPECT_EQ(w.total_appended(), 4);
}

TEST(SlidingWindowTest, ToVectorIsOldestFirst) {
  SlidingWindow w(4);
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) w.Append(v);
  EXPECT_EQ(w.ToVector(), (std::vector<double>{30, 40, 50, 60}));
}

TEST(SlidingWindowTest, SumsMatchBruteForceWhileSliding) {
  const int64_t capacity = 17;
  SlidingWindow w(capacity);
  std::deque<double> mirror;
  Random rng(42);
  for (int step = 0; step < 300; ++step) {
    const double v = rng.UniformDouble(-50, 50);
    w.Append(v);
    mirror.push_back(v);
    if (static_cast<int64_t>(mirror.size()) > capacity) mirror.pop_front();

    ASSERT_EQ(w.size(), static_cast<int64_t>(mirror.size()));
    // Spot-check a few ranges each step.
    for (int t = 0; t < 4; ++t) {
      const int64_t i = rng.UniformInt(0, w.size());
      const int64_t j = rng.UniformInt(i, w.size());
      double sum = 0.0, sq = 0.0;
      for (int64_t k = i; k < j; ++k) {
        sum += mirror[static_cast<size_t>(k)];
        sq += mirror[static_cast<size_t>(k)] * mirror[static_cast<size_t>(k)];
      }
      EXPECT_NEAR(w.Sum(i, j), sum, 1e-8) << "step " << step;
      EXPECT_NEAR(w.SumSquares(i, j), sq, 1e-7) << "step " << step;
    }
  }
}

TEST(SlidingWindowTest, SqErrorMatchesBruteForce) {
  SlidingWindow w(9);
  Random rng(7);
  for (int step = 0; step < 100; ++step) {
    w.Append(rng.UniformInt(0, 100));
    for (int64_t i = 0; i < w.size(); ++i) {
      for (int64_t j = i; j <= w.size(); ++j) {
        double mean = 0.0;
        for (int64_t k = i; k < j; ++k) mean += w[k];
        if (j > i) mean /= static_cast<double>(j - i);
        double sse = 0.0;
        for (int64_t k = i; k < j; ++k) sse += (w[k] - mean) * (w[k] - mean);
        EXPECT_NEAR(w.SqError(i, j), sse, 1e-7);
      }
    }
  }
}

TEST(SlidingWindowTest, RebaseHappensAndPreservesAnswers) {
  SlidingWindow w(8);
  for (int i = 0; i < 100; ++i) w.Append(i);
  EXPECT_GE(w.rebase_count(), 10);  // one rebase per capacity appends
  // Window is now 92..99.
  EXPECT_DOUBLE_EQ(w.Sum(0, 8), 92 + 93 + 94 + 95 + 96 + 97 + 98 + 99);
}

TEST(SlidingWindowTest, CapacityOneWindow) {
  SlidingWindow w(1);
  w.Append(5);
  w.Append(9);
  EXPECT_EQ(w.size(), 1);
  EXPECT_DOUBLE_EQ(w[0], 9);
  EXPECT_DOUBLE_EQ(w.Sum(0, 1), 9);
  EXPECT_DOUBLE_EQ(w.SqError(0, 1), 0.0);
}

TEST(SlidingWindowTest, LargeOffsetValuesStayAccurate) {
  // Rebase bounds cancellation even for large magnitudes over long streams.
  SlidingWindow w(64);
  Random rng(3);
  for (int i = 0; i < 10000; ++i) w.Append(1e9 + rng.UniformInt(0, 3));
  EXPECT_GE(w.SqError(0, 64), 0.0);
  const std::vector<double> snapshot = w.ToVector();
  double mean = 0.0;
  for (double v : snapshot) mean += v;
  mean /= 64.0;
  double sse = 0.0;
  for (double v : snapshot) sse += (v - mean) * (v - mean);
  EXPECT_NEAR(w.SqError(0, 64), sse, 1e-3);
}

TEST(StreamSourcesTest, VectorSourceReplaysAndResets) {
  VectorSource source({1.0, 2.0, 3.0});
  EXPECT_EQ(source.Next(), 1.0);
  EXPECT_EQ(source.Next(), 2.0);
  EXPECT_EQ(source.Next(), 3.0);
  EXPECT_FALSE(source.Next().has_value());
  source.Reset();
  EXPECT_EQ(source.Next(), 1.0);
}

TEST(StreamSourcesTest, GeneratorSourceProducesOnDemand) {
  int64_t i = 0;
  GeneratorSource source([&]() -> std::optional<double> {
    if (i >= 4) return std::nullopt;
    return static_cast<double>(i++);
  });
  EXPECT_EQ(Drain(source, 100), (std::vector<double>{0, 1, 2, 3}));
}

TEST(StreamSourcesTest, LimitSourceTruncates) {
  VectorSource inner({1.0, 2.0, 3.0, 4.0, 5.0});
  LimitSource limited(&inner, 2);
  EXPECT_EQ(Drain(limited, 100), (std::vector<double>{1, 2}));
}

TEST(StreamSourcesTest, DrainRespectsMaxPoints) {
  VectorSource source({1.0, 2.0, 3.0});
  EXPECT_EQ(Drain(source, 2), (std::vector<double>{1, 2}));
}

}  // namespace
}  // namespace streamhist
