// TCP front-end coverage (src/server, DESIGN.md §11): the wire codec, live
// loopback round trips for both request forms, pipelining order, protocol
// error recovery vs. teardown, admission control (connection cap and
// governor budget), and the slow-reader / backpressure bound. Connections
// are driven by the blocking tcp_test_client.h helper; everything runs on
// ephemeral ports so tests parallelize.

#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/server/tcp_server.h"
#include "src/server/wire.h"
#include "src/util/fault.h"
#include "src/util/framing.h"
#include "src/util/governor.h"
#include "tcp_test_client.h"

namespace streamhist {
namespace {

using testing_net::Reply;
using testing_net::TcpTestClient;
using testing_net::WaitFor;

std::string Frame(std::string_view name, const std::vector<double>& values) {
  return net::EncodeBatchAppend(name, values);
}

// ---------------------------------------------------------------------------
// Wire codec (no sockets).

TEST(WireTest, BatchFrameRoundTrips) {
  const std::vector<double> values = {1.5, -2.25, 3.0, 1e300};
  const std::string frame = net::EncodeBatchAppend("eth0", values);
  ASSERT_GE(frame.size(), net::kFrameOverheadBytes);
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), net::kBatchFrameFirstByte);

  const net::FrameScan scan = net::ScanBatchFrame(frame, 1 << 20);
  ASSERT_EQ(scan.state, net::FrameScan::State::kFrame);
  EXPECT_EQ(scan.frame_bytes, frame.size());

  const auto batch = net::DecodeBatchAppend(frame);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->name, "eth0");
  EXPECT_EQ(batch->values, values);
}

TEST(WireTest, ScanNeedsMoreOnEveryPrefix) {
  const std::string frame = Frame("s", {1.0, 2.0});
  for (size_t len = 1; len < frame.size(); ++len) {
    const net::FrameScan scan =
        net::ScanBatchFrame(frame.substr(0, len), 1 << 20);
    EXPECT_EQ(scan.state, net::FrameScan::State::kNeedMore) << "len=" << len;
  }
}

TEST(WireTest, ScanRejectsBadMagicAndHostileLength) {
  std::string bad(net::kFrameHeaderBytes, '\0');
  bad[0] = static_cast<char>(net::kBatchFrameFirstByte);  // looks binary...
  EXPECT_EQ(net::ScanBatchFrame(bad, 1 << 20).state,
            net::FrameScan::State::kBad);  // ...but the magic is wrong

  // Valid magic declaring an absurd payload: rejected before buffering.
  std::string hostile = Frame("s", {1.0});
  const uint64_t huge = uint64_t{1} << 40;
  std::memcpy(hostile.data() + 8, &huge, sizeof(huge));
  const net::FrameScan scan = net::ScanBatchFrame(hostile, 1 << 20);
  EXPECT_EQ(scan.state, net::FrameScan::State::kBad);
  EXPECT_NE(scan.error.find("exceeds"), std::string::npos) << scan.error;
}

TEST(WireTest, DecodeRejectsCorruptionAndEmptyNames) {
  std::string frame = Frame("s", {4.0, 5.0});
  frame.back() = static_cast<char>(frame.back() ^ 0x01);  // break the CRC
  EXPECT_FALSE(net::DecodeBatchAppend(frame).ok());

  EXPECT_FALSE(net::DecodeBatchAppend(Frame("", {1.0})).ok());
}

TEST(WireTest, DecodeRejectsOverflowingValueCount) {
  // A CRC-valid frame whose declared count makes count * 8 wrap mod 2^64 to
  // the actual payload size. Must be a clean decode error, not a
  // std::length_error from resize(2^61) faulting the epoll worker.
  for (const uint64_t hostile :
       {uint64_t{1} << 61, (uint64_t{1} << 61) + 1, (uint64_t{1} << 63) + 2,
        std::numeric_limits<uint64_t>::max() / sizeof(double) + 1}) {
    ByteWriter payload;
    payload.PutLengthPrefixed("s");
    payload.PutU64(hostile);
    payload.PutF64(1.0);  // far fewer bytes than the count claims
    const std::string frame = WrapFrame(net::kBatchFrameMagic,
                                        net::kBatchFrameVersion,
                                        payload.bytes());
    const auto batch = net::DecodeBatchAppend(frame);
    ASSERT_FALSE(batch.ok()) << "count=" << hostile;
    EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireTest, OkResponseCountsLines) {
  EXPECT_EQ(net::OkResponse("one"), "OK 1\none\n");
  EXPECT_EQ(net::OkResponse("a\nb"), "OK 2\na\nb\n");
  EXPECT_EQ(net::OkResponse("a\nb\n"), "OK 2\na\nb\n");
  EXPECT_EQ(net::OkResponse(""), "OK 1\n\n");
}

TEST(WireTest, ErrResponseStaysOneLine) {
  EXPECT_EQ(net::ErrResponse("PROTOCOL", "two\nlines"),
            "ERR PROTOCOL two lines\n");
  EXPECT_EQ(net::ErrResponse(Status::NotFound("no stream x")),
            "ERR NOT_FOUND no stream x\n");
}

// ---------------------------------------------------------------------------
// Live server.

class TcpServerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::DisarmAll();
    governor::SetBudgetForTest(0);
  }

  std::unique_ptr<net::TcpServer> StartServer(net::ServerOptions options = {}) {
    auto server = net::TcpServer::Start(engine_, options);
    EXPECT_TRUE(server.ok()) << server.status();
    return server.ok() ? std::move(server.value()) : nullptr;
  }

  QueryEngine engine_;
};

TEST_F(TcpServerTest, RejectsInvalidOptions) {
  net::ServerOptions options;
  options.threads = 0;
  EXPECT_FALSE(net::TcpServer::Start(engine_, options).ok());
  options = {};
  options.max_connections = 0;
  EXPECT_FALSE(net::TcpServer::Start(engine_, options).ok());
  options = {};
  options.max_line_bytes = 1;
  EXPECT_FALSE(net::TcpServer::Start(engine_, options).ok());
}

TEST_F(TcpServerTest, TextStatementsRoundTrip) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send("CREATE eth0 64 8\n"));
  Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  ASSERT_EQ(reply.lines.size(), 1u);
  EXPECT_NE(reply.lines[0].find("created"), std::string::npos);

  ASSERT_TRUE(client.Send("APPEND eth0 1 2 3\nCOUNT eth0\n"));
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  ASSERT_EQ(reply.lines.size(), 1u);
  EXPECT_EQ(reply.lines[0], "3");

  // Engine errors are typed, not fatal: the connection keeps serving.
  ASSERT_TRUE(client.Send("NO_SUCH_VERB\nCOUNT eth0\n"));
  reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "INVALID_ARGUMENT");
  reply = client.ReadReply();
  EXPECT_TRUE(reply.ok);

  const net::ServerStatsSnapshot stats = server->stats();
  EXPECT_EQ(stats.accepted, 1);
  EXPECT_EQ(stats.statements, 4);
  EXPECT_EQ(stats.statement_errors, 1);
  EXPECT_GT(stats.bytes_in, 0);
  EXPECT_GT(stats.bytes_out, 0);
}

TEST_F(TcpServerTest, PipelinedRepliesArriveInRequestOrder) {
  net::ServerOptions options;
  options.threads = 2;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  std::string burst = "CREATE s 256 8\n";
  constexpr int kAppends = 50;
  for (int i = 0; i < kAppends; ++i) {
    burst += "APPEND s " + std::to_string(i) + "\nCOUNT s\n";
  }
  ASSERT_TRUE(client.Send(burst));

  Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  for (int i = 0; i < kAppends; ++i) {
    reply = client.ReadReply();
    ASSERT_TRUE(reply.ok) << "append " << i;
    reply = client.ReadReply();
    ASSERT_TRUE(reply.ok) << "count " << i;
    ASSERT_EQ(reply.lines.size(), 1u);
    // In-order execution makes each COUNT see exactly i+1 points.
    EXPECT_EQ(reply.lines[0], std::to_string(i + 1)) << "count " << i;
  }
}

TEST_F(TcpServerTest, BlankAndCommentLinesGetNoReply) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send("\n   \n# a comment\nCREATE s\n\nCOUNT s\n"));
  Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  EXPECT_NE(reply.lines[0].find("created"), std::string::npos);
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.lines[0], "0");  // the reply after CREATE's is COUNT's
}

TEST_F(TcpServerTest, BinaryBatchAppendRoundTrips) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send("CREATE s 4096 8\n"));
  ASSERT_TRUE(client.ReadReply().ok);

  std::vector<double> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  // Text statement pipelined after the frame: both forms share the stream.
  ASSERT_TRUE(client.Send(Frame("s", values) + "COUNT s\n"));
  Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  EXPECT_EQ(reply.lines[0], "appended 1000 point(s)");
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.lines[0], "1000");

  const net::ServerStatsSnapshot stats = server->stats();
  EXPECT_EQ(stats.batch_frames, 1);
  EXPECT_EQ(stats.batch_values, 1000);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST_F(TcpServerTest, BatchFrameQuarantinesNonFinite) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s\n"));
  ASSERT_TRUE(client.ReadReply().ok);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  ASSERT_TRUE(client.Send(Frame("s", {1.0, nan, 2.0})));
  const Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  EXPECT_EQ(reply.lines[0], "appended 2 point(s), quarantined 1 non-finite");
}

TEST_F(TcpServerTest, BatchFrameForUnknownStreamIsTypedNotFatal) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send(Frame("ghost", {1.0})));
  Reply reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "NOT_FOUND");

  // A well-framed engine error keeps the connection: framing is intact.
  ASSERT_TRUE(client.Send("LIST\n"));
  reply = client.ReadReply();
  EXPECT_TRUE(reply.ok) << reply.code << " " << reply.message;
}

TEST_F(TcpServerTest, BadFrameMagicAnswersThenCloses) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  std::string junk(net::kFrameHeaderBytes, 'x');
  junk[0] = static_cast<char>(net::kBatchFrameFirstByte);
  ASSERT_TRUE(client.Send(junk));
  const Reply reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "PROTOCOL");
  client.ReadUntilEof();
  EXPECT_TRUE(client.eof());
  EXPECT_TRUE(WaitFor([&] { return server->stats().active == 0; }));
  EXPECT_EQ(server->stats().protocol_errors, 1);
}

TEST_F(TcpServerTest, CorruptFrameCrcAnswersThenCloses) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s\n"));
  ASSERT_TRUE(client.ReadReply().ok);

  std::string frame = Frame("s", {1.0, 2.0});
  frame.back() = static_cast<char>(frame.back() ^ 0x01);
  ASSERT_TRUE(client.Send(frame));
  const Reply reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "PROTOCOL");
  client.ReadUntilEof();
  EXPECT_TRUE(client.eof());

  // Nothing was appended through the damaged frame.
  TcpTestClient verify(server->port());
  ASSERT_TRUE(verify.connected());
  ASSERT_TRUE(verify.Send("COUNT s\n"));
  const Reply count = verify.ReadReply();
  ASSERT_TRUE(count.ok);
  EXPECT_EQ(count.lines[0], "0");
}

TEST_F(TcpServerTest, OversizedLineIsRecoverable) {
  net::ServerOptions options;
  options.max_line_bytes = 64;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s\n"));
  ASSERT_TRUE(client.ReadReply().ok);

  // One oversized statement draws one ERR; the next line runs normally,
  // whether the oversized bytes arrived whole or trickled in.
  const std::string oversized(500, 'A');
  ASSERT_TRUE(client.Send(oversized + "\nCOUNT s\n"));
  Reply reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "PROTOCOL");
  EXPECT_NE(reply.message.find("line limit"), std::string::npos);
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  EXPECT_EQ(reply.lines[0], "0");
  EXPECT_EQ(server->stats().protocol_errors, 1);
}

TEST_F(TcpServerTest, ConnectionCapRefusesWithTypedError) {
  net::ServerOptions options;
  options.max_connections = 1;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  TcpTestClient first(server->port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.Send("LIST\n"));
  ASSERT_TRUE(first.ReadReply().ok);  // round trip: admission completed

  TcpTestClient second(server->port());
  ASSERT_TRUE(second.connected());
  const Reply refusal = second.ReadReply();
  EXPECT_FALSE(refusal.ok);
  EXPECT_EQ(refusal.code, "OVERLOADED");
  second.ReadUntilEof();
  EXPECT_TRUE(second.eof());
  EXPECT_EQ(server->stats().refused_over_cap, 1);

  // The admitted connection is unaffected, and closing it frees the slot.
  ASSERT_TRUE(first.Send("LIST\n"));
  EXPECT_TRUE(first.ReadReply().ok);
  first.Close();
  ASSERT_TRUE(WaitFor([&] { return server->stats().active == 0; }));
  TcpTestClient third(server->port());
  ASSERT_TRUE(third.connected());
  ASSERT_TRUE(third.Send("LIST\n"));
  EXPECT_TRUE(third.ReadReply().ok);
}

TEST_F(TcpServerTest, GovernorBudgetRefusesAdmission) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  // Smaller than the per-connection buffer charge, so admission must refuse.
  governor::SetBudgetForTest(governor::Used() + 1024);

  TcpTestClient refused(server->port());
  ASSERT_TRUE(refused.connected());
  const Reply refusal = refused.ReadReply();
  EXPECT_FALSE(refusal.ok);
  EXPECT_EQ(refusal.code, "RESOURCE_EXHAUSTED");
  refused.ReadUntilEof();
  EXPECT_TRUE(refused.eof());
  EXPECT_EQ(server->stats().refused_over_budget, 1);

  governor::SetBudgetForTest(0);
  TcpTestClient admitted(server->port());
  ASSERT_TRUE(admitted.connected());
  ASSERT_TRUE(admitted.Send("LIST\n"));
  EXPECT_TRUE(admitted.ReadReply().ok);
}

TEST_F(TcpServerTest, AdmissionChargeIsReleasedOnDisconnect) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const int64_t before = governor::Used();
  {
    TcpTestClient client(server->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send("LIST\n"));
    ASSERT_TRUE(client.ReadReply().ok);
    EXPECT_GT(governor::Used(), before);  // buffers are accounted
  }
  ASSERT_TRUE(WaitFor([&] { return server->stats().active == 0; }));
  ASSERT_TRUE(WaitFor([&] { return governor::Used() == before; }));
}

TEST_F(TcpServerTest, SlowReaderIsBoundedAndDisconnected) {
  net::ServerOptions options;
  options.max_line_bytes = 64;
  options.max_frame_bytes = 64;
  options.max_output_buffer = 256;      // tiny high-water mark
  options.slow_reader_timeout_ms = 100;  // fast disconnect for the test
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s\n"));
  ASSERT_TRUE(client.ReadReply().ok);

  // Every write the server attempts now fails EAGAIN, so replies queue on
  // the connection — the deterministic stand-in for a reader that stopped.
  fault::Arm("net.write.eagain");
  constexpr int kPipelined = 1500;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) burst += "COUNT s\n";
  ASSERT_TRUE(client.Send(burst));

  ASSERT_TRUE(
      WaitFor([&] { return server->stats().slow_reader_disconnects == 1; }));
  fault::DisarmAll();
  client.ReadUntilEof();
  EXPECT_TRUE(client.eof());

  const net::ServerStatsSnapshot stats = server->stats();
  // Backpressure stopped execution at the output high-water mark: far fewer
  // statements ran than were pipelined, so queued replies stayed bounded.
  EXPECT_LT(stats.statements, 200) << "backpressure did not engage";
  EXPECT_GT(stats.statements, 0);
  ASSERT_TRUE(WaitFor([&] { return server->stats().active == 0; }));
}

TEST_F(TcpServerTest, SessionDeadlineCancelsStatements) {
  net::ServerOptions options;
  options.deadline_ms = 60000;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  // The injected expiry makes every per-request deadline report expired
  // at the statement boundary — the wire answer must be a typed CANCELLED.
  fault::ScopedFault expired("deadline.expire");
  ASSERT_TRUE(client.Send("LIST\n"));
  const Reply reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "CANCELLED");
}

TEST_F(TcpServerTest, ShutdownDisconnectsClientsAndKeepsStats) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s\nAPPEND s 1 2\n"));
  ASSERT_TRUE(client.ReadReply().ok);
  ASSERT_TRUE(client.ReadReply().ok);

  server->Shutdown();
  client.ReadUntilEof();
  EXPECT_TRUE(client.eof());

  const net::ServerStatsSnapshot stats = server->stats();
  EXPECT_EQ(stats.statements, 2);
  EXPECT_EQ(stats.active, 0);
  const std::string summary = server->SummaryLine();
  EXPECT_NE(summary.find("2 statements"), std::string::npos) << summary;

  server->Shutdown();  // idempotent
}

TEST_F(TcpServerTest, ManyConnectionsAcrossWorkers) {
  net::ServerOptions options;
  options.threads = 3;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  std::vector<std::unique_ptr<TcpTestClient>> clients;
  for (int i = 0; i < 9; ++i) {
    clients.push_back(std::make_unique<TcpTestClient>(server->port()));
    ASSERT_TRUE(clients.back()->connected());
  }
  for (int i = 0; i < 9; ++i) {
    std::string name = "s";
    name += std::to_string(i);
    std::string script;
    script += "CREATE " + name + "\n";
    script += "APPEND " + name + " 1 2 3\n";
    script += "COUNT " + name + "\n";
    ASSERT_TRUE(clients[static_cast<size_t>(i)]->Send(script));
  }
  for (int i = 0; i < 9; ++i) {
    TcpTestClient& client = *clients[static_cast<size_t>(i)];
    ASSERT_TRUE(client.ReadReply().ok) << i;
    ASSERT_TRUE(client.ReadReply().ok) << i;
    const Reply count = client.ReadReply();
    ASSERT_TRUE(count.ok) << i;
    EXPECT_EQ(count.lines[0], "3") << i;
  }
  EXPECT_EQ(server->stats().accepted, 9);
}

}  // namespace
}  // namespace streamhist
