// TCP front-end coverage (src/server, DESIGN.md §11): the wire codec, live
// loopback round trips for both request forms, pipelining order, protocol
// error recovery vs. teardown, admission control (connection cap and
// governor budget), and the slow-reader / backpressure bound. Connections
// are driven by the blocking tcp_test_client.h helper; everything runs on
// ephemeral ports so tests parallelize.

#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/server/replication.h"
#include "src/server/tcp_server.h"
#include "src/server/wire.h"
#include "src/util/fault.h"
#include "src/util/framing.h"
#include "src/util/governor.h"
#include "tcp_test_client.h"

namespace streamhist {
namespace {

using testing_net::Reply;
using testing_net::TcpTestClient;
using testing_net::WaitFor;

std::string Frame(std::string_view name, const std::vector<double>& values) {
  return net::EncodeBatchAppend(name, values);
}

// ---------------------------------------------------------------------------
// Wire codec (no sockets).

TEST(WireTest, BatchFrameRoundTrips) {
  const std::vector<double> values = {1.5, -2.25, 3.0, 1e300};
  const std::string frame = net::EncodeBatchAppend("eth0", values);
  ASSERT_GE(frame.size(), net::kFrameOverheadBytes);
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), net::kBatchFrameFirstByte);

  const net::FrameScan scan = net::ScanBatchFrame(frame, 1 << 20);
  ASSERT_EQ(scan.state, net::FrameScan::State::kFrame);
  EXPECT_EQ(scan.frame_bytes, frame.size());

  const auto batch = net::DecodeBatchAppend(frame);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->name, "eth0");
  EXPECT_EQ(batch->values, values);
}

TEST(WireTest, ScanNeedsMoreOnEveryPrefix) {
  const std::string frame = Frame("s", {1.0, 2.0});
  for (size_t len = 1; len < frame.size(); ++len) {
    const net::FrameScan scan =
        net::ScanBatchFrame(frame.substr(0, len), 1 << 20);
    EXPECT_EQ(scan.state, net::FrameScan::State::kNeedMore) << "len=" << len;
  }
}

TEST(WireTest, ScanRejectsBadMagicAndHostileLength) {
  std::string bad(net::kFrameHeaderBytes, '\0');
  bad[0] = static_cast<char>(net::kBatchFrameFirstByte);  // looks binary...
  EXPECT_EQ(net::ScanBatchFrame(bad, 1 << 20).state,
            net::FrameScan::State::kBad);  // ...but the magic is wrong

  // Valid magic declaring an absurd payload: rejected before buffering.
  std::string hostile = Frame("s", {1.0});
  const uint64_t huge = uint64_t{1} << 40;
  std::memcpy(hostile.data() + 8, &huge, sizeof(huge));
  const net::FrameScan scan = net::ScanBatchFrame(hostile, 1 << 20);
  EXPECT_EQ(scan.state, net::FrameScan::State::kBad);
  EXPECT_NE(scan.error.find("exceeds"), std::string::npos) << scan.error;
}

TEST(WireTest, DecodeRejectsCorruptionAndEmptyNames) {
  std::string frame = Frame("s", {4.0, 5.0});
  frame.back() = static_cast<char>(frame.back() ^ 0x01);  // break the CRC
  EXPECT_FALSE(net::DecodeBatchAppend(frame).ok());

  EXPECT_FALSE(net::DecodeBatchAppend(Frame("", {1.0})).ok());
}

TEST(WireTest, DecodeRejectsOverflowingValueCount) {
  // A CRC-valid frame whose declared count makes count * 8 wrap mod 2^64 to
  // the actual payload size. Must be a clean decode error, not a
  // std::length_error from resize(2^61) faulting the epoll worker.
  for (const uint64_t hostile :
       {uint64_t{1} << 61, (uint64_t{1} << 61) + 1, (uint64_t{1} << 63) + 2,
        std::numeric_limits<uint64_t>::max() / sizeof(double) + 1}) {
    ByteWriter payload;
    payload.PutLengthPrefixed("s");
    payload.PutU64(hostile);
    payload.PutF64(1.0);  // far fewer bytes than the count claims
    const std::string frame = WrapFrame(net::kBatchFrameMagic,
                                        net::kBatchFrameVersion,
                                        payload.bytes());
    const auto batch = net::DecodeBatchAppend(frame);
    ASSERT_FALSE(batch.ok()) << "count=" << hostile;
    EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireTest, OkResponseCountsLines) {
  EXPECT_EQ(net::OkResponse("one"), "OK 1\none\n");
  EXPECT_EQ(net::OkResponse("a\nb"), "OK 2\na\nb\n");
  EXPECT_EQ(net::OkResponse("a\nb\n"), "OK 2\na\nb\n");
  EXPECT_EQ(net::OkResponse(""), "OK 1\n\n");
}

TEST(WireTest, ErrResponseStaysOneLine) {
  EXPECT_EQ(net::ErrResponse("PROTOCOL", "two\nlines"),
            "ERR PROTOCOL two lines\n");
  EXPECT_EQ(net::ErrResponse(Status::NotFound("no stream x")),
            "ERR NOT_FOUND no stream x\n");
}

// ---------------------------------------------------------------------------
// Live server.

class TcpServerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::DisarmAll();
    governor::SetBudgetForTest(0);
  }

  std::unique_ptr<net::TcpServer> StartServer(net::ServerOptions options = {}) {
    auto server = net::TcpServer::Start(engine_, options);
    EXPECT_TRUE(server.ok()) << server.status();
    return server.ok() ? std::move(server.value()) : nullptr;
  }

  QueryEngine engine_;
};

TEST_F(TcpServerTest, RejectsInvalidOptions) {
  net::ServerOptions options;
  options.threads = 0;
  EXPECT_FALSE(net::TcpServer::Start(engine_, options).ok());
  options = {};
  options.max_connections = 0;
  EXPECT_FALSE(net::TcpServer::Start(engine_, options).ok());
  options = {};
  options.max_line_bytes = 1;
  EXPECT_FALSE(net::TcpServer::Start(engine_, options).ok());
}

TEST_F(TcpServerTest, TextStatementsRoundTrip) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send("CREATE eth0 64 8\n"));
  Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  ASSERT_EQ(reply.lines.size(), 1u);
  EXPECT_NE(reply.lines[0].find("created"), std::string::npos);

  ASSERT_TRUE(client.Send("APPEND eth0 1 2 3\nCOUNT eth0\n"));
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  ASSERT_EQ(reply.lines.size(), 1u);
  EXPECT_EQ(reply.lines[0], "3");

  // Engine errors are typed, not fatal: the connection keeps serving.
  ASSERT_TRUE(client.Send("NO_SUCH_VERB\nCOUNT eth0\n"));
  reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "INVALID_ARGUMENT");
  reply = client.ReadReply();
  EXPECT_TRUE(reply.ok);

  const net::ServerStatsSnapshot stats = server->stats();
  EXPECT_EQ(stats.accepted, 1);
  EXPECT_EQ(stats.statements, 4);
  EXPECT_EQ(stats.statement_errors, 1);
  EXPECT_GT(stats.bytes_in, 0);
  EXPECT_GT(stats.bytes_out, 0);
}

TEST_F(TcpServerTest, PipelinedRepliesArriveInRequestOrder) {
  net::ServerOptions options;
  options.threads = 2;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  std::string burst = "CREATE s 256 8\n";
  constexpr int kAppends = 50;
  for (int i = 0; i < kAppends; ++i) {
    burst += "APPEND s " + std::to_string(i) + "\nCOUNT s\n";
  }
  ASSERT_TRUE(client.Send(burst));

  Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  for (int i = 0; i < kAppends; ++i) {
    reply = client.ReadReply();
    ASSERT_TRUE(reply.ok) << "append " << i;
    reply = client.ReadReply();
    ASSERT_TRUE(reply.ok) << "count " << i;
    ASSERT_EQ(reply.lines.size(), 1u);
    // In-order execution makes each COUNT see exactly i+1 points.
    EXPECT_EQ(reply.lines[0], std::to_string(i + 1)) << "count " << i;
  }
}

TEST_F(TcpServerTest, BlankAndCommentLinesGetNoReply) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send("\n   \n# a comment\nCREATE s\n\nCOUNT s\n"));
  Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  EXPECT_NE(reply.lines[0].find("created"), std::string::npos);
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.lines[0], "0");  // the reply after CREATE's is COUNT's
}

TEST_F(TcpServerTest, BinaryBatchAppendRoundTrips) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send("CREATE s 4096 8\n"));
  ASSERT_TRUE(client.ReadReply().ok);

  std::vector<double> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  // Text statement pipelined after the frame: both forms share the stream.
  ASSERT_TRUE(client.Send(Frame("s", values) + "COUNT s\n"));
  Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  EXPECT_EQ(reply.lines[0], "appended 1000 point(s)");
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.lines[0], "1000");

  const net::ServerStatsSnapshot stats = server->stats();
  EXPECT_EQ(stats.batch_frames, 1);
  EXPECT_EQ(stats.batch_values, 1000);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST_F(TcpServerTest, BatchFrameQuarantinesNonFinite) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s\n"));
  ASSERT_TRUE(client.ReadReply().ok);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  ASSERT_TRUE(client.Send(Frame("s", {1.0, nan, 2.0})));
  const Reply reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  EXPECT_EQ(reply.lines[0], "appended 2 point(s), quarantined 1 non-finite");
}

TEST_F(TcpServerTest, BatchFrameForUnknownStreamIsTypedNotFatal) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send(Frame("ghost", {1.0})));
  Reply reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "NOT_FOUND");

  // A well-framed engine error keeps the connection: framing is intact.
  ASSERT_TRUE(client.Send("LIST\n"));
  reply = client.ReadReply();
  EXPECT_TRUE(reply.ok) << reply.code << " " << reply.message;
}

TEST_F(TcpServerTest, BadFrameMagicAnswersThenCloses) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  std::string junk(net::kFrameHeaderBytes, 'x');
  junk[0] = static_cast<char>(net::kBatchFrameFirstByte);
  ASSERT_TRUE(client.Send(junk));
  const Reply reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "PROTOCOL");
  client.ReadUntilEof();
  EXPECT_TRUE(client.eof());
  EXPECT_TRUE(WaitFor([&] { return server->stats().active == 0; }));
  EXPECT_EQ(server->stats().protocol_errors, 1);
}

TEST_F(TcpServerTest, CorruptFrameCrcAnswersThenCloses) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s\n"));
  ASSERT_TRUE(client.ReadReply().ok);

  std::string frame = Frame("s", {1.0, 2.0});
  frame.back() = static_cast<char>(frame.back() ^ 0x01);
  ASSERT_TRUE(client.Send(frame));
  const Reply reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "PROTOCOL");
  client.ReadUntilEof();
  EXPECT_TRUE(client.eof());

  // Nothing was appended through the damaged frame.
  TcpTestClient verify(server->port());
  ASSERT_TRUE(verify.connected());
  ASSERT_TRUE(verify.Send("COUNT s\n"));
  const Reply count = verify.ReadReply();
  ASSERT_TRUE(count.ok);
  EXPECT_EQ(count.lines[0], "0");
}

TEST_F(TcpServerTest, OversizedLineIsRecoverable) {
  net::ServerOptions options;
  options.max_line_bytes = 64;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s\n"));
  ASSERT_TRUE(client.ReadReply().ok);

  // One oversized statement draws one ERR; the next line runs normally,
  // whether the oversized bytes arrived whole or trickled in.
  const std::string oversized(500, 'A');
  ASSERT_TRUE(client.Send(oversized + "\nCOUNT s\n"));
  Reply reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "PROTOCOL");
  EXPECT_NE(reply.message.find("line limit"), std::string::npos);
  reply = client.ReadReply();
  ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
  EXPECT_EQ(reply.lines[0], "0");
  EXPECT_EQ(server->stats().protocol_errors, 1);
}

TEST_F(TcpServerTest, ConnectionCapRefusesWithTypedError) {
  net::ServerOptions options;
  options.max_connections = 1;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  TcpTestClient first(server->port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.Send("LIST\n"));
  ASSERT_TRUE(first.ReadReply().ok);  // round trip: admission completed

  TcpTestClient second(server->port());
  ASSERT_TRUE(second.connected());
  const Reply refusal = second.ReadReply();
  EXPECT_FALSE(refusal.ok);
  EXPECT_EQ(refusal.code, "OVERLOADED");
  second.ReadUntilEof();
  EXPECT_TRUE(second.eof());
  EXPECT_EQ(server->stats().refused_over_cap, 1);

  // The admitted connection is unaffected, and closing it frees the slot.
  ASSERT_TRUE(first.Send("LIST\n"));
  EXPECT_TRUE(first.ReadReply().ok);
  first.Close();
  ASSERT_TRUE(WaitFor([&] { return server->stats().active == 0; }));
  TcpTestClient third(server->port());
  ASSERT_TRUE(third.connected());
  ASSERT_TRUE(third.Send("LIST\n"));
  EXPECT_TRUE(third.ReadReply().ok);
}

TEST_F(TcpServerTest, GovernorBudgetRefusesAdmission) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  // Smaller than the per-connection buffer charge, so admission must refuse.
  governor::SetBudgetForTest(governor::Used() + 1024);

  TcpTestClient refused(server->port());
  ASSERT_TRUE(refused.connected());
  const Reply refusal = refused.ReadReply();
  EXPECT_FALSE(refusal.ok);
  EXPECT_EQ(refusal.code, "RESOURCE_EXHAUSTED");
  refused.ReadUntilEof();
  EXPECT_TRUE(refused.eof());
  EXPECT_EQ(server->stats().refused_over_budget, 1);

  governor::SetBudgetForTest(0);
  TcpTestClient admitted(server->port());
  ASSERT_TRUE(admitted.connected());
  ASSERT_TRUE(admitted.Send("LIST\n"));
  EXPECT_TRUE(admitted.ReadReply().ok);
}

TEST_F(TcpServerTest, AdmissionChargeIsReleasedOnDisconnect) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const int64_t before = governor::Used();
  {
    TcpTestClient client(server->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send("LIST\n"));
    ASSERT_TRUE(client.ReadReply().ok);
    EXPECT_GT(governor::Used(), before);  // buffers are accounted
  }
  ASSERT_TRUE(WaitFor([&] { return server->stats().active == 0; }));
  ASSERT_TRUE(WaitFor([&] { return governor::Used() == before; }));
}

TEST_F(TcpServerTest, SlowReaderIsBoundedAndDisconnected) {
  net::ServerOptions options;
  options.max_line_bytes = 64;
  options.max_frame_bytes = 64;
  options.max_output_buffer = 256;      // tiny high-water mark
  options.slow_reader_timeout_ms = 100;  // fast disconnect for the test
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s\n"));
  ASSERT_TRUE(client.ReadReply().ok);

  // Every write the server attempts now fails EAGAIN, so replies queue on
  // the connection — the deterministic stand-in for a reader that stopped.
  fault::Arm("net.write.eagain");
  constexpr int kPipelined = 1500;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) burst += "COUNT s\n";
  ASSERT_TRUE(client.Send(burst));

  ASSERT_TRUE(
      WaitFor([&] { return server->stats().slow_reader_disconnects == 1; }));
  fault::DisarmAll();
  client.ReadUntilEof();
  EXPECT_TRUE(client.eof());

  const net::ServerStatsSnapshot stats = server->stats();
  // Backpressure stopped execution at the output high-water mark: far fewer
  // statements ran than were pipelined, so queued replies stayed bounded.
  EXPECT_LT(stats.statements, 200) << "backpressure did not engage";
  EXPECT_GT(stats.statements, 0);
  ASSERT_TRUE(WaitFor([&] { return server->stats().active == 0; }));
}

TEST_F(TcpServerTest, SessionDeadlineCancelsStatements) {
  net::ServerOptions options;
  options.deadline_ms = 60000;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());

  // The injected expiry makes every per-request deadline report expired
  // at the statement boundary — the wire answer must be a typed CANCELLED.
  fault::ScopedFault expired("deadline.expire");
  ASSERT_TRUE(client.Send("LIST\n"));
  const Reply reply = client.ReadReply();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "CANCELLED");
}

TEST_F(TcpServerTest, ShutdownDisconnectsClientsAndKeepsStats) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s\nAPPEND s 1 2\n"));
  ASSERT_TRUE(client.ReadReply().ok);
  ASSERT_TRUE(client.ReadReply().ok);

  server->Shutdown();
  client.ReadUntilEof();
  EXPECT_TRUE(client.eof());

  const net::ServerStatsSnapshot stats = server->stats();
  EXPECT_EQ(stats.statements, 2);
  EXPECT_EQ(stats.active, 0);
  const std::string summary = server->SummaryLine();
  EXPECT_NE(summary.find("2 statements"), std::string::npos) << summary;

  server->Shutdown();  // idempotent
}

TEST_F(TcpServerTest, ManyConnectionsAcrossWorkers) {
  net::ServerOptions options;
  options.threads = 3;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  std::vector<std::unique_ptr<TcpTestClient>> clients;
  for (int i = 0; i < 9; ++i) {
    clients.push_back(std::make_unique<TcpTestClient>(server->port()));
    ASSERT_TRUE(clients.back()->connected());
  }
  for (int i = 0; i < 9; ++i) {
    std::string name = "s";
    name += std::to_string(i);
    std::string script;
    script += "CREATE " + name + "\n";
    script += "APPEND " + name + " 1 2 3\n";
    script += "COUNT " + name + "\n";
    ASSERT_TRUE(clients[static_cast<size_t>(i)]->Send(script));
  }
  for (int i = 0; i < 9; ++i) {
    TcpTestClient& client = *clients[static_cast<size_t>(i)];
    ASSERT_TRUE(client.ReadReply().ok) << i;
    ASSERT_TRUE(client.ReadReply().ok) << i;
    const Reply count = client.ReadReply();
    ASSERT_TRUE(count.ok) << i;
    EXPECT_EQ(count.lines[0], "3") << i;
  }
  EXPECT_EQ(server->stats().accepted, 9);
}

// ---------------------------------------------------------------------------
// Replication wire frames (no sockets).

TEST(WireTest, ReplFramesRoundTrip) {
  const std::string subscribe = net::EncodeReplSubscribe(42);
  EXPECT_EQ(static_cast<unsigned char>(subscribe[0]),
            net::kReplSubscribeFirstByte);
  net::ReplFrameScan scan = net::ScanReplFrame(subscribe, 1 << 20);
  ASSERT_EQ(scan.state, net::FrameScan::State::kFrame);
  EXPECT_EQ(scan.magic, net::kReplSubscribeMagic);
  EXPECT_EQ(scan.frame_bytes, subscribe.size());
  const auto from = net::DecodeReplSubscribe(subscribe);
  ASSERT_TRUE(from.ok()) << from.status();
  EXPECT_EQ(from.value(), 42);

  const std::vector<net::ReplRecord> records = {{7, "alpha"}, {8, "beta"}};
  const std::string shipped = net::EncodeReplRecords(records);
  scan = net::ScanReplFrame(shipped, 1 << 20);
  ASSERT_EQ(scan.state, net::FrameScan::State::kFrame);
  EXPECT_EQ(scan.magic, net::kReplRecordsMagic);
  const auto decoded = net::DecodeReplRecords(shipped);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value(), records);

  const auto durable = net::DecodeReplHeartbeat(net::EncodeReplHeartbeat(99));
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_EQ(durable.value(), 99);

  const auto progress = net::DecodeReplProgress(net::EncodeReplProgress(17));
  ASSERT_TRUE(progress.ok()) << progress.status();
  EXPECT_EQ(progress.value(), 17);

  const std::string image(300, '\x5a');
  const auto bootstrap =
      net::DecodeReplBootstrap(net::EncodeReplBootstrap(123, image));
  ASSERT_TRUE(bootstrap.ok()) << bootstrap.status();
  EXPECT_EQ(bootstrap->wal_floor, 123);
  EXPECT_EQ(bootstrap->image, image);
}

TEST(WireTest, ReplScanNeedsMoreOnPrefixAndRejectsCorruption) {
  const std::vector<net::ReplRecord> records = {{1, "payload"}};
  const std::string frame = net::EncodeReplRecords(records);
  for (size_t len = 1; len < frame.size(); ++len) {
    EXPECT_EQ(net::ScanReplFrame(frame.substr(0, len), 1 << 20).state,
              net::FrameScan::State::kNeedMore)
        << "len=" << len;
  }

  std::string corrupt = frame;
  corrupt.back() = static_cast<char>(corrupt.back() ^ 0x01);
  EXPECT_FALSE(net::DecodeReplRecords(corrupt).ok());

  // Bad magic in the replication range and a hostile declared length are
  // both rejected at scan time, before any buffering.
  std::string bad(net::kFrameHeaderBytes, '\0');
  bad[0] = static_cast<char>(net::kReplSubscribeFirstByte);
  EXPECT_EQ(net::ScanReplFrame(bad, 1 << 20).state, net::FrameScan::State::kBad);
  std::string hostile = frame;
  const uint64_t huge = uint64_t{1} << 40;
  std::memcpy(hostile.data() + 8, &huge, sizeof(huge));
  EXPECT_EQ(net::ScanReplFrame(hostile, 1 << 20).state,
            net::FrameScan::State::kBad);
}

TEST(WireTest, ReplFrameCorruptFaultBreaksTheCrc) {
  // The chaos hook: an armed repl.frame.corrupt makes the encoder emit a
  // bit-flipped Records frame the replica must reject on CRC.
  const std::vector<net::ReplRecord> records = {{5, "bits"}};
  fault::ScopedFault corrupt("repl.frame.corrupt");
  const std::string frame = net::EncodeReplRecords(records);
  const net::ReplFrameScan scan = net::ScanReplFrame(frame, 1 << 20);
  ASSERT_EQ(scan.state, net::FrameScan::State::kFrame);  // framing intact
  EXPECT_FALSE(net::DecodeReplRecords(frame).ok());      // payload rotted
  EXPECT_GE(fault::TriggerCount("repl.frame.corrupt"), 1);
}

// ---------------------------------------------------------------------------
// Live replication: a primary server with a ReplicationHub feeding a
// ReplicaClient that applies into a second, read-only engine.

class ReplicationTest : public TcpServerTest {
 protected:
  std::string WalDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  void OpenWal(QueryEngine& engine, const std::string& name,
               int64_t segment_bytes = 0) {
    QueryEngine::WalConfig config;
    if (segment_bytes > 0) config.options.segment_bytes = segment_bytes;
    const auto report = engine.OpenWal(WalDir(name), config);
    ASSERT_TRUE(report.ok()) << report.status();
  }

  // Primary = the base fixture's engine_ + a hub wired into the server.
  void StartPrimary(const std::string& wal_name, int64_t sync_ms = 0,
                    int64_t segment_bytes = 0) {
    OpenWal(engine_, wal_name, segment_bytes);
    net::HubOptions hub_options;
    hub_options.heartbeat_ms = 50;
    hub_options.sync_ms = sync_ms;
    hub_ = std::make_unique<net::ReplicationHub>(engine_, hub_options);
    if (sync_ms > 0) {
      engine_.SetReplicationBarrier(
          [this](int64_t lsn) { return hub_->WaitShipped(lsn); });
    }
    net::ServerOptions options;
    options.replication_hub = hub_.get();
    server_ = StartServer(options);
    ASSERT_NE(server_, nullptr);
  }

  void StartReplica(const std::string& wal_name) {
    OpenWal(replica_engine_, wal_name);
    net::ReplicaOptions options;
    options.primary_port = server_->port();
    options.dead_peer_timeout_ms = 2000;
    options.reconnect_initial_ms = 5;
    options.reconnect_max_ms = 50;
    auto started = net::ReplicaClient::Start(replica_engine_, options);
    ASSERT_TRUE(started.ok()) << started.status();
    replica_ = std::move(started.value());
  }

  bool ReplicaCaughtUpTo(int64_t lsn) {
    return WaitFor([&] {
      return replica_engine_.replica_status().applied_lsn >= lsn;
    });
  }

  void TearDown() override {
    replica_.reset();            // stops the subscription thread
    if (server_) server_->Shutdown();
    engine_.SetReplicationBarrier(nullptr);
    if (hub_) hub_->Stop();
    TcpServerTest::TearDown();
  }

  // Declaration order matters for destruction: the server (which hands
  // sockets to the hub) dies before the hub, and the replica client (which
  // applies into replica_engine_) dies before its engine.
  std::unique_ptr<net::ReplicationHub> hub_;
  std::unique_ptr<net::TcpServer> server_;
  QueryEngine replica_engine_;
  std::unique_ptr<net::ReplicaClient> replica_;
};

TEST_F(ReplicationTest, ReplicaFollowsRefusesWritesAndPromotes) {
  StartPrimary("repl_follow_primary");
  StartReplica("repl_follow_replica");

  TcpTestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s 64 8\nAPPEND s 1 2 3\n"));
  ASSERT_TRUE(client.ReadReply().ok);
  ASSERT_TRUE(client.ReadReply().ok);

  ASSERT_TRUE(ReplicaCaughtUpTo(engine_.WalDurableLsn()));
  const auto count = replica_engine_.Execute("COUNT s");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count.value(), "3");

  // Writes are refused with the typed READONLY wire token...
  const auto refused = replica_engine_.Execute("APPEND s 9");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kReadOnly);

  // ...while replicated appends keep landing underneath.
  ASSERT_TRUE(client.Send("APPEND s 4 5\n"));
  ASSERT_TRUE(client.ReadReply().ok);
  ASSERT_TRUE(ReplicaCaughtUpTo(engine_.WalDurableLsn()));
  EXPECT_EQ(replica_engine_.Execute("COUNT s").value(), "5");

  const QueryEngine::ReplicaStatus status = replica_engine_.replica_status();
  EXPECT_TRUE(status.is_replica);
  EXPECT_TRUE(status.connected);
  EXPECT_EQ(status.applied_lsn, engine_.WalDurableLsn());
  EXPECT_GE(status.batches, 1);

  // PROMOTE (the verb the TCP front-end would dispatch) flips it writable
  // at the applied-LSN boundary; a second PROMOTE is idempotent.
  const auto promoted = replica_engine_.Execute("PROMOTE");
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_NE(promoted.value().find("promoted to primary at lsn"),
            std::string::npos)
      << promoted.value();
  const auto again = replica_engine_.Execute("PROMOTE");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_NE(again.value().find("already promoted"), std::string::npos);

  const auto write = replica_engine_.Execute("APPEND s 6");
  ASSERT_TRUE(write.ok()) << write.status();
  EXPECT_EQ(replica_engine_.Execute("COUNT s").value(), "6");
}

TEST_F(ReplicationTest, SubscribeWithoutAHubIsTypedAndCloses) {
  // No WAL, no hub: a Subscribe frame gets a typed refusal, not a hang.
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TcpTestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(net::EncodeReplSubscribe(1)));
  const Reply refusal = client.ReadReply();
  EXPECT_FALSE(refusal.ok);
  EXPECT_EQ(refusal.code, "FAILED_PRECONDITION");
  client.ReadUntilEof();
  EXPECT_TRUE(client.eof());
  EXPECT_EQ(server->stats().repl_subscribes, 0);
}

TEST_F(ReplicationTest, SubscribeFaultRefusesWithOverloaded) {
  StartPrimary("repl_subscribe_fault");
  fault::Arm("repl.subscribe", 1);
  TcpTestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(net::EncodeReplSubscribe(1)));
  const Reply refusal = client.ReadReply();
  EXPECT_FALSE(refusal.ok);
  EXPECT_EQ(refusal.code, "OVERLOADED");
  client.ReadUntilEof();
  EXPECT_TRUE(client.eof());

  // The fault budget is spent: the next subscribe is adopted by the hub.
  TcpTestClient retry(server_->port());
  ASSERT_TRUE(retry.connected());
  ASSERT_TRUE(retry.Send(net::EncodeReplSubscribe(1)));
  ASSERT_TRUE(WaitFor([&] { return server_->stats().repl_subscribes == 1; }));
  ASSERT_TRUE(WaitFor([&] { return hub_->stats().subscribers == 1; }));
}

TEST_F(ReplicationTest, PartitionForcesReconnectWithResumeAtDurableLsn) {
  StartPrimary("repl_partition_primary");
  StartReplica("repl_partition_replica");

  TcpTestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s 128 8\nAPPEND s 1 2 3\n"));
  ASSERT_TRUE(client.ReadReply().ok);
  ASSERT_TRUE(client.ReadReply().ok);
  ASSERT_TRUE(ReplicaCaughtUpTo(engine_.WalDurableLsn()));

  // One partition drops the shipping link on the primary's send path; the
  // replica must notice, reconnect with backoff, and resume from its own
  // durable LSN — re-delivered records are vetoed, not double-applied.
  fault::Arm("net.partition", 1);
  ASSERT_TRUE(WaitFor([&] {
    return replica_engine_.replica_status().reconnects >= 1;
  }));
  ASSERT_TRUE(WaitFor([&] { return hub_->stats().subscribers == 1; }));

  ASSERT_TRUE(client.Send("APPEND s 4 5 6 7\n"));
  ASSERT_TRUE(client.ReadReply().ok);
  ASSERT_TRUE(ReplicaCaughtUpTo(engine_.WalDurableLsn()));
  EXPECT_EQ(replica_engine_.Execute("COUNT s").value(), "7");
  EXPECT_EQ(replica_engine_.Execute("SUM s 0 7").value(),
            engine_.Execute("SUM s 0 7").value());
  EXPECT_GE(hub_->stats().subscribes, 2);  // original + post-partition
}

TEST_F(ReplicationTest, LateSubscriberBootstrapsFromACheckpointImage) {
  // Tiny segments so the appends seal several of them; the checkpoint then
  // truncates the sealed prefix and the primary legitimately no longer
  // retains LSN 1. A from-the-beginning subscriber must be served the
  // checkpoint image (Bootstrap handoff), never a gap.
  StartPrimary("repl_bootstrap_primary", /*sync_ms=*/0, /*segment_bytes=*/128);

  TcpTestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s 64 8\n"));
  ASSERT_TRUE(client.ReadReply().ok);
  constexpr int kAppends = 30;
  for (int i = 0; i < kAppends; ++i) {
    ASSERT_TRUE(client.Send("APPEND s " + std::to_string(i) + "\n"));
    ASSERT_TRUE(client.ReadReply().ok) << i;
  }
  ASSERT_TRUE(client.Send("WAL CHECKPOINT\n"));
  ASSERT_TRUE(client.ReadReply().ok);
  ASSERT_GT(engine_.WalStats().segments_deleted, 0)
      << "checkpoint truncated nothing: the bootstrap path is not exercised";

  StartReplica("repl_bootstrap_replica");
  ASSERT_TRUE(ReplicaCaughtUpTo(engine_.WalDurableLsn()));
  EXPECT_GE(replica_engine_.replica_status().bootstraps, 1);
  EXPECT_EQ(replica_engine_.Execute("COUNT s").value(),
            std::to_string(kAppends));
  EXPECT_EQ(replica_engine_.Execute("SUM s 0 " + std::to_string(kAppends))
                .value(),
            engine_.Execute("SUM s 0 " + std::to_string(kAppends)).value());
}

TEST_F(ReplicationTest, SemiSyncBarrierAcksThroughAReplica) {
  StartPrimary("repl_sync_primary", /*sync_ms=*/5000);
  StartReplica("repl_sync_replica");

  // With the barrier installed, every OK below means the hub's WaitShipped
  // returned — under a generous budget and a live replica that must happen
  // via a real ack, never a timeout.
  TcpTestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s 64 8\n"));
  ASSERT_TRUE(client.ReadReply().ok);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Send("APPEND s " + std::to_string(i) + "\n"));
    ASSERT_TRUE(client.ReadReply().ok) << i;
  }

  ASSERT_TRUE(WaitFor([&] {
    return hub_->stats().acked_lsn >= engine_.WalDurableLsn();
  }));
  EXPECT_EQ(hub_->stats().sync_timeouts, 0);
  EXPECT_EQ(replica_engine_.WalDurableLsn(), engine_.WalDurableLsn());
}

TEST_F(ReplicationTest, SemiSyncWithNoSubscriberDegradesToAsync) {
  StartPrimary("repl_sync_alone", /*sync_ms=*/5000);
  // No replica at all: the barrier must not block writes for the budget —
  // a lone primary keeps acking at full speed (DESIGN.md §14.3).
  TcpTestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("CREATE s 64 8\nAPPEND s 1 2 3\nCOUNT s\n"));
  ASSERT_TRUE(client.ReadReply().ok);
  ASSERT_TRUE(client.ReadReply().ok);
  const Reply count = client.ReadReply();
  ASSERT_TRUE(count.ok);
  EXPECT_EQ(count.lines[0], "3");
}

TEST_F(TcpServerTest, StaleReplicaShedsEstimationWithOverloaded) {
  // Engine-level rung of the degradation ladder: a read-only replica past
  // its lag bound sheds estimation verbs with a typed OVERLOADED.
  ASSERT_TRUE(engine_.Execute("CREATE s 64 8").ok());
  engine_.SetReadOnly(true);
  engine_.SetReplicaMaxLagMs(1);
  QueryEngine::ReplicaStatus status;
  status.is_replica = true;
  status.last_contact_ms = 1;  // steady-clock epoch: hopelessly stale
  engine_.UpdateReplicaStatus(status);

  const auto shed = engine_.Execute("COUNT s");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);

  engine_.SetReplicaMaxLagMs(0);  // bound disabled: serves what it has
  EXPECT_TRUE(engine_.Execute("COUNT s").ok());
  engine_.SetReadOnly(false);
}

}  // namespace
}  // namespace streamhist
