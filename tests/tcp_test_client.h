#ifndef STREAMHIST_TESTS_TCP_TEST_CLIENT_H_
#define STREAMHIST_TESTS_TCP_TEST_CLIENT_H_

// A minimal blocking TCP client for exercising src/server over loopback in
// tests (tcp_server_test, fault_injection_test). Reads are bounded by a
// receive timeout so a server bug surfaces as a test failure, not a hang.

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace streamhist {
namespace testing_net {

/// One parsed protocol reply: "OK <k>" + k payload lines, or "ERR <CODE>
/// <message>". `ok == false` with empty `code` means the connection ended
/// (EOF / timeout) before a reply arrived.
struct Reply {
  bool ok = false;
  std::string code;                 // ERR code token; empty for OK replies
  std::string message;              // ERR message text
  std::vector<std::string> lines;   // OK payload lines
};

class TcpTestClient {
 public:
  explicit TcpTestClient(uint16_t port, int recv_timeout_ms = 10000) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return;
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~TcpTestClient() { Close(); }
  TcpTestClient(const TcpTestClient&) = delete;
  TcpTestClient& operator=(const TcpTestClient&) = delete;

  bool connected() const { return fd_ >= 0; }
  bool eof() const { return eof_; }

  /// Sends all of `bytes`; false if the peer reset the connection.
  bool Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Half-closes the send side so the server sees EOF while the receive side
  /// stays readable.
  void CloseSend() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Next '\n'-terminated line without the newline; "" with eof() set when
  /// the connection ended first.
  std::string ReadLine() {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      if (!FillBuffer()) return "";
    }
  }

  /// Reads one protocol reply.
  Reply ReadReply() {
    Reply reply;
    const std::string head = ReadLine();
    if (head.empty() && eof_) return reply;
    if (head.rfind("OK ", 0) == 0) {
      reply.ok = true;
      const long k = std::strtol(head.c_str() + 3, nullptr, 10);
      for (long i = 0; i < k; ++i) {
        reply.lines.push_back(ReadLine());
        if (eof_) {
          reply.ok = false;
          return reply;
        }
      }
      return reply;
    }
    if (head.rfind("ERR ", 0) == 0) {
      const size_t space = head.find(' ', 4);
      reply.code = head.substr(4, space == std::string::npos
                                      ? std::string::npos
                                      : space - 4);
      if (space != std::string::npos) reply.message = head.substr(space + 1);
      return reply;
    }
    reply.message = "unparseable reply head: " + head;
    return reply;
  }

  /// Drains the connection to EOF (or timeout) and returns the raw tail.
  std::string ReadUntilEof() {
    while (FillBuffer()) {
    }
    std::string tail;
    tail.swap(buffer_);
    return tail;
  }

 private:
  bool FillBuffer() {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer_.append(chunk, static_cast<size_t>(n));
        return true;
      }
      if (n == 0) {
        eof_ = true;
        return false;
      }
      if (errno == EINTR) continue;
      eof_ = true;  // timeout or reset: treat as end of stream for tests
      return false;
    }
  }

  int fd_ = -1;
  std::string buffer_;
  bool eof_ = false;
};

/// Polls `pred` (e.g. a server-stats condition) until true or ~5 s pass.
inline bool WaitFor(const std::function<bool()>& pred) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < give_up) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

}  // namespace testing_net
}  // namespace streamhist

#endif  // STREAMHIST_TESTS_TCP_TEST_CLIENT_H_
