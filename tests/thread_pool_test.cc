#include "src/util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace streamhist {
namespace {

TEST(ThreadPoolTest, StartupAndShutdownIsClean) {
  for (int n : {1, 2, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
    // Destructor joins idle workers without deadlock.
  }
}

TEST(ThreadPoolTest, ShutdownDrainsOutstandingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WorkerThreadsAreMarked) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  std::atomic<bool> marked{false};
  {
    ThreadPool pool(1);
    pool.Submit([&marked] { marked = ThreadPool::InWorkerThread(); });
  }
  EXPECT_TRUE(marked.load());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  SetThreadCount(4);
  std::vector<int> hits(10000, 0);
  ParallelFor(0, 10000, /*grain=*/16, [&hits](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)]++;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  SetThreadCount(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&calls](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(3, 4, 64, [&calls](int64_t begin, int64_t end) {
    EXPECT_EQ(begin, 3);
    EXPECT_EQ(end, 4);
    ++calls;
  });
  EXPECT_EQ(calls, 1);  // below grain: runs inline as one chunk
}

TEST(ParallelForTest, PropagatesTheLowestChunkException) {
  SetThreadCount(4);
  try {
    // Every chunk throws; the rethrown one must always be the lowest chunk,
    // no matter which worker finished first.
    ParallelFor(0, 1000, /*grain=*/10, [](int64_t begin, int64_t) {
      throw std::runtime_error("chunk@" + std::to_string(begin));
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk@0");
  }
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  SetThreadCount(2);
  std::atomic<int64_t> total{0};
  // Outer chunks occupy pool workers; the nested loop must not wait on the
  // same (fully busy) pool or the test hangs.
  ParallelFor(0, 8, /*grain=*/1, [&total](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      EXPECT_TRUE(ThreadPool::InWorkerThread() || ThreadCount() == 1);
      ParallelFor(0, 100, /*grain=*/1, [&total](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadCountTest, SetThreadCountOverrides) {
  SetThreadCount(3);
  EXPECT_EQ(ThreadCount(), 3);
  SetThreadCount(1);
  EXPECT_EQ(ThreadCount(), 1);
}

TEST(ThreadCountTest, EnvKnobParsesValidValues) {
  ASSERT_EQ(setenv("STREAMHIST_THREADS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(DefaultThreadCount(), 5);
  ASSERT_EQ(setenv("STREAMHIST_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1);  // falls back to hardware_concurrency
  ASSERT_EQ(setenv("STREAMHIST_THREADS", "0", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1);
  ASSERT_EQ(unsetenv("STREAMHIST_THREADS"), 0);
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace streamhist
