#include "src/core/time_window.h"

#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/vopt_dp.h"
#include "src/stream/sliding_window.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

TimeWindowHistogram MakeTw(double horizon, int64_t max_points = 256,
                           int64_t buckets = 4, double epsilon = 0.5) {
  TimeWindowOptions options;
  options.horizon = horizon;
  options.max_points = max_points;
  options.num_buckets = buckets;
  options.epsilon = epsilon;
  return TimeWindowHistogram::Create(options).value();
}

TEST(SlidingWindowEvictTest, EvictOldestShrinksAndPreservesSums) {
  SlidingWindow w(4);
  for (double v : {1.0, 2.0, 3.0, 4.0}) w.Append(v);
  w.EvictOldest();
  EXPECT_EQ(w.size(), 3);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w.Sum(0, 3), 9.0);
  EXPECT_DOUBLE_EQ(w.SqError(0, 3), 2.0);  // {2,3,4}: mean 3, SSE 2
  w.EvictOldest();
  w.EvictOldest();
  EXPECT_EQ(w.size(), 1);
  EXPECT_DOUBLE_EQ(w.Sum(0, 1), 4.0);
  // Refilling after eviction behaves normally.
  w.Append(7.0);
  EXPECT_EQ(w.size(), 2);
  EXPECT_DOUBLE_EQ(w.Sum(0, 2), 11.0);
}

TEST(TimeWindowTest, CreateValidatesOptions) {
  TimeWindowOptions bad;
  bad.horizon = 0.0;
  EXPECT_FALSE(TimeWindowHistogram::Create(bad).ok());
  bad.horizon = 10.0;
  bad.max_points = 0;
  EXPECT_FALSE(TimeWindowHistogram::Create(bad).ok());
}

TEST(TimeWindowTest, RejectsRegressingTimestamps) {
  TimeWindowHistogram tw = MakeTw(10.0);
  ASSERT_TRUE(tw.Append(5.0, 1.0).ok());
  EXPECT_FALSE(tw.Append(4.0, 1.0).ok());
  EXPECT_TRUE(tw.Append(5.0, 2.0).ok());  // equal timestamps allowed
}

TEST(TimeWindowTest, HorizonEvictsOldPoints) {
  TimeWindowHistogram tw = MakeTw(10.0);
  for (int t = 0; t < 30; ++t) {
    ASSERT_TRUE(tw.Append(static_cast<double>(t), static_cast<double>(t)).ok());
  }
  // At t=29 the horizon keeps timestamps in (19, 29]: 20..29.
  EXPECT_EQ(tw.size(), 10);
  EXPECT_DOUBLE_EQ(tw.oldest_timestamp(), 20.0);
}

TEST(TimeWindowTest, AdvanceToEvictsWithoutData) {
  TimeWindowHistogram tw = MakeTw(10.0);
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(tw.Append(static_cast<double>(t), 1.0).ok());
  }
  tw.AdvanceTo(100.0);
  EXPECT_EQ(tw.size(), 0);
  EXPECT_EQ(tw.Extract().num_buckets(), 0);
}

TEST(TimeWindowTest, MaxPointsCapsTheBuffer) {
  TimeWindowHistogram tw = MakeTw(/*horizon=*/1e9, /*max_points=*/8);
  for (int t = 0; t < 100; ++t) {
    ASSERT_TRUE(tw.Append(static_cast<double>(t), static_cast<double>(t)).ok());
  }
  EXPECT_EQ(tw.size(), 8);
  EXPECT_DOUBLE_EQ(tw.oldest_timestamp(), 92.0);
}

TEST(TimeWindowTest, HistogramTracksCurrentWindowWithinGuarantee) {
  TimeWindowHistogram tw = MakeTw(/*horizon=*/50.0, /*max_points=*/128,
                                  /*buckets=*/6, /*epsilon=*/0.2);
  Random rng(3);
  std::deque<std::pair<double, double>> mirror;
  double now = 0.0;
  for (int step = 0; step < 400; ++step) {
    now += rng.Exponential(1.0);  // irregular arrivals
    const double v = rng.UniformInt(0, 100);
    ASSERT_TRUE(tw.Append(now, v).ok());
    mirror.emplace_back(now, v);
    while (!mirror.empty() && mirror.front().first <= now - 50.0) {
      mirror.pop_front();
    }
    while (static_cast<int64_t>(mirror.size()) > 128) mirror.pop_front();

    ASSERT_EQ(tw.size(), static_cast<int64_t>(mirror.size()));
    if (step % 53 != 0) continue;
    std::vector<double> window;
    for (const auto& [ts, value] : mirror) window.push_back(value);
    const double opt = OptimalSse(window, 6);
    EXPECT_LE(tw.ApproxError(), 1.2 * opt + 1e-6) << "step " << step;
  }
}

TEST(TimeWindowTest, RangeSumByTimeMatchesMirror) {
  TimeWindowHistogram tw = MakeTw(/*horizon=*/1000.0, /*max_points=*/512,
                                  /*buckets=*/64, /*epsilon=*/0.1);
  // With B as large as the point count, sums are exact.
  for (int t = 0; t < 50; ++t) {
    ASSERT_TRUE(tw.Append(static_cast<double>(t), static_cast<double>(t)).ok());
  }
  // Sum of values with timestamps in [10, 20): values 10..19.
  EXPECT_NEAR(tw.RangeSumByTime(10.0, 20.0), 145.0, 1e-9);
  // Clipped to the retained window.
  EXPECT_NEAR(tw.RangeSumByTime(-100.0, 5.0), 0 + 1 + 2 + 3 + 4, 1e-9);
  // Empty or inverted intervals.
  EXPECT_DOUBLE_EQ(tw.RangeSumByTime(20.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(tw.RangeSumByTime(200.0, 300.0), 0.0);
}

}  // namespace
}  // namespace streamhist
