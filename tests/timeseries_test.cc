#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/timeseries/apca.h"
#include "src/timeseries/distance.h"
#include "src/timeseries/piecewise.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

TEST(PiecewiseConstantTest, FromHistogramPreservesStructure) {
  Histogram h = Histogram::FromBucketsUnchecked(
      {Bucket{0, 4, 2.0}, Bucket{4, 6, -1.0}});
  PiecewiseConstant p = PiecewiseConstant::FromHistogram(h);
  EXPECT_EQ(p.num_segments(), 2);
  EXPECT_EQ(p.domain_size(), 6);
  EXPECT_DOUBLE_EQ(p.Estimate(0), 2.0);
  EXPECT_DOUBLE_EQ(p.Estimate(3), 2.0);
  EXPECT_DOUBLE_EQ(p.Estimate(4), -1.0);
  EXPECT_DOUBLE_EQ(p.Estimate(5), -1.0);
}

TEST(PiecewiseConstantTest, ReconstructAndEstimateAgree) {
  PiecewiseConstant p(
      {Segment{0, 3, 1.5}, Segment{3, 5, 0.0}, Segment{5, 9, -2.5}});
  const std::vector<double> r = p.Reconstruct();
  ASSERT_EQ(r.size(), 9u);
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(r[static_cast<size_t>(i)], p.Estimate(i));
  }
}

TEST(PiecewiseConstantTest, ResetValuesToMeans) {
  const std::vector<double> data{1, 3, 10, 20};
  PiecewiseConstant p({Segment{0, 2, 0.0}, Segment{2, 4, 0.0}});
  p.ResetValuesToMeans(data);
  EXPECT_DOUBLE_EQ(p.segments()[0].value, 2.0);
  EXPECT_DOUBLE_EQ(p.segments()[1].value, 15.0);
}

TEST(ApcaTest, SegmentBudgetIsRespected) {
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kRandomWalk, 300, 7);
  for (int64_t b : {1, 4, 16}) {
    PiecewiseConstant p = BuildApca(data, b);
    EXPECT_LE(p.num_segments(), b);
    EXPECT_EQ(p.domain_size(), 300);
  }
}

TEST(ApcaTest, SegmentValuesAreExactMeans) {
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kSineMix, 128, 9);
  PiecewiseConstant p = BuildApca(data, 8);
  for (const Segment& s : p.segments()) {
    double mean = 0.0;
    for (int64_t i = s.begin; i < s.end; ++i) {
      mean += data[static_cast<size_t>(i)];
    }
    mean /= static_cast<double>(s.width());
    EXPECT_NEAR(s.value, mean, 1e-9);
  }
}

TEST(ApcaTest, PiecewiseConstantInputIsRecovered) {
  std::vector<double> data;
  for (int i = 0; i < 32; ++i) data.push_back(5.0);
  for (int i = 0; i < 32; ++i) data.push_back(-5.0);
  PiecewiseConstant p = BuildApca(data, 2);
  ASSERT_EQ(p.num_segments(), 2);
  EXPECT_EQ(p.segments()[0].end, 32);
  EXPECT_DOUBLE_EQ(p.segments()[0].value, 5.0);
  EXPECT_DOUBLE_EQ(p.segments()[1].value, -5.0);
}

TEST(ApcaTest, VOptimalNeverWorseThanApcaInSse) {
  // The paper's motivating gap: histograms with provable quality vs the APCA
  // heuristic, at the same segment budget.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    const std::vector<double> data =
        GenerateDataset(DatasetKind::kPiecewiseConstant, 256, seed);
    const int64_t b = 8;
    const double vopt = BuildVOptimalHistogram(data, b).error;
    std::vector<double> apca_approx = BuildApca(data, b).Reconstruct();
    double apca_sse = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
      apca_sse += (data[i] - apca_approx[i]) * (data[i] - apca_approx[i]);
    }
    EXPECT_LE(vopt, apca_sse + 1e-6) << "seed " << seed;
  }
}

TEST(DistanceTest, EuclideanBasics) {
  const std::vector<double> a{0, 0, 0};
  const std::vector<double> b{1, 2, 2};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b), 9.0);
  EXPECT_DOUBLE_EQ(Euclidean(a, b), 3.0);
  EXPECT_DOUBLE_EQ(Euclidean(a, a), 0.0);
}

TEST(DistanceTest, LowerBoundIsZeroForSelfRepresentation) {
  // Query equal to the segment means everywhere -> LB 0.
  PiecewiseConstant p({Segment{0, 2, 3.0}, Segment{2, 4, 7.0}});
  const std::vector<double> q{3, 3, 7, 7};
  EXPECT_DOUBLE_EQ(SquaredLowerBound(q, p), 0.0);
}

// Core GEMINI property: LB(query, repr(series)) <= Euclidean(query, series)
// whenever the representation stores exact segment means.
class LowerBoundPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LowerBoundPropertyTest, NeverExceedsTrueDistance) {
  const uint64_t seed = GetParam();
  Random rng(seed);
  const int64_t n = 128;
  const std::vector<double> series =
      GenerateDataset(DatasetKind::kSineMix, n, seed);
  const std::vector<double> query =
      GenerateDataset(DatasetKind::kRandomWalk, n, seed + 1000);

  for (int64_t b : {2, 5, 13}) {
    // APCA representation.
    const PiecewiseConstant apca = BuildApca(series, b);
    EXPECT_LE(SquaredLowerBound(query, apca),
              SquaredEuclidean(query, series) + 1e-6);
    // Histogram representation.
    const PiecewiseConstant hist = PiecewiseConstant::FromHistogram(
        BuildVOptimalHistogram(series, b).histogram);
    EXPECT_LE(SquaredLowerBound(query, hist),
              SquaredEuclidean(query, series) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DistanceTest, TighterRepresentationGivesTighterBound) {
  // More segments -> reconstruction closer to the series -> larger LB
  // (not guaranteed pointwise, but holds overwhelmingly; check a fixed case).
  const std::vector<double> series =
      GenerateDataset(DatasetKind::kPiecewiseConstant, 128, 3);
  const std::vector<double> query =
      GenerateDataset(DatasetKind::kPiecewiseConstant, 128, 4);
  const auto lb_at = [&](int64_t b) {
    return SquaredLowerBound(query, PiecewiseConstant::FromHistogram(
                                        BuildVOptimalHistogram(series, b)
                                            .histogram));
  };
  EXPECT_LE(lb_at(2), lb_at(32) + 1e-6);
  EXPECT_LE(lb_at(32), SquaredEuclidean(query, series) + 1e-6);
}

}  // namespace
}  // namespace streamhist
