#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/io.h"
#include "src/util/random.h"
#include "src/util/result.h"
#include "src/util/status.h"
#include "src/util/timer.h"

namespace streamhist {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad B");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad B");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad B");
}

TEST(StatusTest, EqualityAndStreaming) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  std::ostringstream os;
  os << Status::IOError("disk");
  EXPECT_EQ(os.str(), "IOError: disk");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    STREAMHIST_RETURN_NOT_OK(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("n"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("no");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    STREAMHIST_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(outer(false).value(), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kNotFound);
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(5), b(5), c(6);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  EXPECT_NE(a.NextUint64(), c.NextUint64());
}

TEST(RandomTest, UniformIntRespectsBounds) {
  Random rng(9);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  Random rng(10);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RandomTest, BernoulliFrequency) {
  Random rng(12);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(RandomTest, ZipfRankOneDominates) {
  Random rng(13);
  int64_t first = 0;
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = rng.Zipf(100, 1.5);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
    if (v == 1) ++first;
  }
  EXPECT_GT(first, 7000);  // ~41% mass at rank 1 for s=1.5, n=100
}

TEST(RandomTest, ShufflePreservesMultiset) {
  Random rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(t.ElapsedNanos(), 0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  t.Restart();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

TEST(IoTest, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/series.csv";
  const std::vector<double> data{1.5, -2.25, 1e6, 0.0};
  ASSERT_TRUE(WriteSeriesCsv(path, data).ok());
  auto back = ReadSeriesCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.value()[i], data[i]);
  }
}

TEST(IoTest, SkipsCommentsAndTakesFirstColumn) {
  const std::string path = ::testing::TempDir() + "/commented.csv";
  {
    std::ofstream out(path);
    out << "# header\n1.5,extra\n\n2.5\n";
  }
  auto back = ReadSeriesCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), (std::vector<double>{1.5, 2.5}));
}

TEST(IoTest, MissingFileIsIOError) {
  auto r = ReadSeriesCsv("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(IoTest, GarbageLineIsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "/garbage.csv";
  {
    std::ofstream out(path);
    out << "1.0\nnot-a-number\n";
  }
  auto r = ReadSeriesCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace streamhist
