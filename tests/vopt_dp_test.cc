#include "src/core/vopt_dp.h"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/bucket_cost.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

// Exhaustive minimum over all partitions of [0, n) into at most B buckets.
double ExhaustiveOptimal(const BucketCost& cost, int64_t n, int64_t b,
                         int64_t start = 0) {
  if (start == n) return 0.0;
  if (b == 1) return cost.Cost(start, n);
  double best = std::numeric_limits<double>::infinity();
  for (int64_t mid = start + 1; mid <= n; ++mid) {
    best = std::min(best, cost.Cost(start, mid) +
                              ExhaustiveOptimal(cost, n, b - 1, mid));
  }
  return best;
}

TEST(VOptDpTest, SingleBucketIsPrefixError) {
  const std::vector<double> data{1, 2, 3, 4};
  SseBucketCost cost(data);
  auto result = BuildVOptimalHistogram(data, 1);
  EXPECT_EQ(result.histogram.num_buckets(), 1);
  EXPECT_DOUBLE_EQ(result.error, cost.Cost(0, 4));
}

TEST(VOptDpTest, EnoughBucketsIsExact) {
  const std::vector<double> data{5, -1, 3, 8};
  auto result = BuildVOptimalHistogram(data, 4);
  EXPECT_DOUBLE_EQ(result.error, 0.0);
  EXPECT_DOUBLE_EQ(result.histogram.SseAgainst(data), 0.0);
}

TEST(VOptDpTest, MoreBucketsThanPointsIsExact) {
  const std::vector<double> data{5, -1};
  auto result = BuildVOptimalHistogram(data, 10);
  EXPECT_DOUBLE_EQ(result.error, 0.0);
  EXPECT_LE(result.histogram.num_buckets(), 2);
}

TEST(VOptDpTest, PiecewiseConstantIsRecoveredExactly) {
  // Three constant runs; 3 buckets must achieve zero error with the exact
  // boundaries.
  const std::vector<double> data{7, 7, 7, 2, 2, 9, 9, 9, 9};
  auto result = BuildVOptimalHistogram(data, 3);
  EXPECT_NEAR(result.error, 0.0, 1e-12);
  ASSERT_EQ(result.histogram.num_buckets(), 3);
  EXPECT_EQ(result.histogram.buckets()[0].end, 3);
  EXPECT_EQ(result.histogram.buckets()[1].end, 5);
}

TEST(VOptDpTest, PaperExampleTwoBuckets) {
  // From the paper's Example 1: data 100,0,0,0,1,1,1,1 with B=2 should split
  // as {100} | {0,0,0,1,1,1,1}.
  const std::vector<double> data{100, 0, 0, 0, 1, 1, 1, 1};
  auto result = BuildVOptimalHistogram(data, 2);
  ASSERT_EQ(result.histogram.num_buckets(), 2);
  EXPECT_EQ(result.histogram.buckets()[0].end, 1);
  EXPECT_DOUBLE_EQ(result.histogram.buckets()[0].value, 100.0);
  // SSE of {0,0,0,1,1,1,1}: mean 4/7.
  EXPECT_NEAR(result.error, 3 * (4.0 / 7) * (4.0 / 7) +
                                4 * (3.0 / 7) * (3.0 / 7),
              1e-9);
}

TEST(VOptDpTest, HistogramErrorMatchesSseAgainst) {
  Random rng(21);
  std::vector<double> data;
  for (int i = 0; i < 60; ++i) data.push_back(rng.UniformDouble(0, 100));
  for (int64_t b : {1, 2, 5, 10}) {
    auto result = BuildVOptimalHistogram(data, b);
    EXPECT_NEAR(result.error, result.histogram.SseAgainst(data), 1e-6)
        << "B=" << b;
  }
}

TEST(VOptDpTest, ErrorIsNonIncreasingInBuckets) {
  Random rng(33);
  std::vector<double> data;
  for (int i = 0; i < 80; ++i) data.push_back(rng.Gaussian(50, 20));
  double prev = std::numeric_limits<double>::infinity();
  for (int64_t b = 1; b <= 20; ++b) {
    const double err = OptimalSse(data, b);
    EXPECT_LE(err, prev + 1e-9) << "B=" << b;
    prev = err;
  }
}

TEST(VOptDpTest, OptimalSseAgreesWithFullBuild) {
  Random rng(44);
  std::vector<double> data;
  for (int i = 0; i < 50; ++i) data.push_back(rng.UniformDouble(-5, 5));
  for (int64_t b : {1, 3, 7}) {
    EXPECT_NEAR(OptimalSse(data, b), BuildVOptimalHistogram(data, b).error,
                1e-9)
        << "B=" << b;
  }
}

struct ExhaustiveCase {
  int64_t n;
  int64_t b;
  uint64_t seed;
};

class VOptExhaustiveTest : public ::testing::TestWithParam<ExhaustiveCase> {};

TEST_P(VOptExhaustiveTest, MatchesExhaustiveSearch) {
  const ExhaustiveCase c = GetParam();
  Random rng(c.seed);
  std::vector<double> data;
  for (int64_t i = 0; i < c.n; ++i) data.push_back(rng.UniformInt(0, 20));
  SseBucketCost cost(data);
  const double expected = ExhaustiveOptimal(cost, c.n, c.b);
  auto result = BuildOptimalHistogram(cost, c.b);
  EXPECT_NEAR(result.error, expected, 1e-9);
  EXPECT_NEAR(result.histogram.SseAgainst(data), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, VOptExhaustiveTest,
    ::testing::Values(ExhaustiveCase{4, 2, 1}, ExhaustiveCase{6, 2, 2},
                      ExhaustiveCase{6, 3, 3}, ExhaustiveCase{8, 3, 4},
                      ExhaustiveCase{9, 4, 5}, ExhaustiveCase{10, 2, 6},
                      ExhaustiveCase{10, 5, 7}, ExhaustiveCase{12, 3, 8},
                      ExhaustiveCase{12, 4, 9}, ExhaustiveCase{7, 7, 10}));

class VOptCostFnTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, uint64_t>> {
};

TEST_P(VOptCostFnTest, GenericCostsMatchExhaustive) {
  const auto [n, b, seed] = GetParam();
  Random rng(seed);
  std::vector<double> data;
  for (int64_t i = 0; i < n; ++i) data.push_back(rng.UniformInt(-10, 10));

  const SaeBucketCost sae(data);
  EXPECT_NEAR(BuildOptimalHistogram(sae, b).error,
              ExhaustiveOptimal(sae, n, b), 1e-9);

  const MaxAbsBucketCost maxabs(data);
  EXPECT_NEAR(BuildOptimalHistogram(maxabs, b).error,
              ExhaustiveOptimal(maxabs, n, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, VOptCostFnTest,
    ::testing::Values(std::make_tuple(int64_t{6}, int64_t{2}, uint64_t{11}),
                      std::make_tuple(int64_t{8}, int64_t{3}, uint64_t{12}),
                      std::make_tuple(int64_t{10}, int64_t{4}, uint64_t{13})));

}  // namespace
}  // namespace streamhist
