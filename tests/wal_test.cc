// Write-ahead log (util/wal.h + engine integration): LSN monotonicity
// across reopen, group commit under concurrent appenders, segment rotation
// and truncation, torn-tail repair, policy-spec parsing, governor
// admission, and the engine-level recovery / checkpoint / LOAD-re-anchor
// protocol. The adversarial byte-level grids (every truncation prefix,
// every bit flip) live in serialization_test.cc; the fault points in
// fault_injection_test.cc.

// GCC 12 emits a bogus -Wrestrict for operator+(const char*, std::string&&)
// once this TU is big enough for the optimizer to inline the short-string
// insert path (gcc bug 105651). There is no real aliasing here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/util/governor.h"
#include "src/util/wal.h"

namespace streamhist {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { governor::SetBudgetForTest(0); }

  std::string TempDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  wal::Options NonePolicy() {
    wal::Options options;
    options.policy = wal::SyncPolicy::kNone;
    return options;
  }

  // All LSN >= from_lsn records currently replayable from `dir`.
  std::vector<std::pair<int64_t, std::string>> Records(const std::string& dir,
                                                       int64_t from_lsn = 1) {
    std::vector<std::pair<int64_t, std::string>> out;
    const Status scanned = wal::Wal::Scan(
        dir,
        [&](int64_t lsn, std::string_view payload) {
          if (lsn >= from_lsn) out.emplace_back(lsn, std::string(payload));
          return Status::OK();
        },
        nullptr);
    EXPECT_TRUE(scanned.ok()) << scanned;
    return out;
  }
};

TEST_F(WalTest, LsnsAreMonotoneAcrossReopen) {
  const std::string dir = TempDir("wal_lsn_reopen");
  int64_t last = 0;
  for (int round = 0; round < 3; ++round) {
    wal::OpenReport report;
    auto opened = wal::Wal::Open(dir, NonePolicy(), &report);
    ASSERT_TRUE(opened.ok()) << opened.status();
    EXPECT_EQ(report.next_lsn, last + 1);
    for (int i = 0; i < 4; ++i) {
      const auto lsn = opened.value()->Append("r" + std::to_string(i));
      ASSERT_TRUE(lsn.ok()) << lsn.status();
      EXPECT_EQ(lsn.value(), last + 1);
      last = lsn.value();
    }
    ASSERT_TRUE(opened.value()->Flush().ok());
  }
  const auto records = Records(dir);
  ASSERT_EQ(records.size(), 12u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].first, static_cast<int64_t>(i + 1));
  }
}

TEST_F(WalTest, GroupCommitAcksEveryConcurrentAppendDurably) {
  const std::string dir = TempDir("wal_group_commit");
  wal::Options options;  // policy kAlways: every append blocks on fsync
  auto opened = wal::Wal::Open(dir, options, nullptr);
  ASSERT_TRUE(opened.ok()) << opened.status();
  wal::Wal& log = *opened.value();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  std::vector<std::thread> threads;
  std::vector<std::vector<int64_t>> lsns(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto lsn = log.Append("t" + std::to_string(t));
        ASSERT_TRUE(lsn.ok()) << lsn.status();
        lsns[t].push_back(lsn.value());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const wal::StatsSnapshot stats = log.stats();
  EXPECT_EQ(stats.records, kThreads * kPerThread);
  // Every ack implies durability...
  EXPECT_EQ(stats.durable_lsn, kThreads * kPerThread);
  EXPECT_EQ(stats.sync_waits, kThreads * kPerThread);
  // ...but the flusher may cover many waiters with one fsync. The exact
  // coalescing ratio is timing-dependent (measured in bench_load); here we
  // only require it never exceeds one fsync per append.
  EXPECT_GE(stats.fsyncs, 1);
  EXPECT_LE(stats.fsyncs, stats.sync_waits);

  // LSNs: per-thread strictly increasing, globally a permutation of 1..N.
  std::vector<int64_t> all;
  for (const auto& per_thread : lsns) {
    for (size_t i = 1; i < per_thread.size(); ++i) {
      EXPECT_LT(per_thread[i - 1], per_thread[i]);
    }
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<int64_t>(i + 1));
  }
}

TEST_F(WalTest, RotationKeepsReplayContiguous) {
  const std::string dir = TempDir("wal_rotation");
  wal::Options options = NonePolicy();
  options.segment_bytes = 128;  // a few records per segment
  {
    auto opened = wal::Wal::Open(dir, options, nullptr);
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(opened.value()->Append("payload-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(opened.value()->Flush().ok());
    EXPECT_GT(opened.value()->stats().segments_created, 1);
  }
  wal::OpenReport report;
  auto reopened = wal::Wal::Open(dir, options, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_GT(report.segments, 1);
  EXPECT_EQ(report.records, 40);
  int64_t expected = 1;
  const Status replayed = reopened.value()->Replay(
      1,
      [&](int64_t lsn, std::string_view payload) {
        EXPECT_EQ(lsn, expected);
        EXPECT_EQ(payload, "payload-" + std::to_string(expected - 1));
        ++expected;
        return Status::OK();
      },
      nullptr);
  ASSERT_TRUE(replayed.ok()) << replayed;
  EXPECT_EQ(expected, 41);
}

TEST_F(WalTest, TruncateBeforeDeletesOnlyFullyCoveredSealedSegments) {
  const std::string dir = TempDir("wal_truncate");
  wal::Options options = NonePolicy();
  options.segment_bytes = 128;
  auto opened = wal::Wal::Open(dir, options, nullptr);
  ASSERT_TRUE(opened.ok()) << opened.status();
  wal::Wal& log = *opened.value();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(log.Append("payload-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(log.Flush().ok());

  // Truncating below an early LSN removes nothing we still need: every
  // record >= 10 must survive, and record 10 itself must still be present
  // even if it shares a segment with lower LSNs.
  ASSERT_TRUE(log.TruncateBefore(10).ok());
  auto records = Records(dir, 1);
  ASSERT_FALSE(records.empty());
  EXPECT_LE(records.front().first, 10);
  EXPECT_EQ(records.back().first, 40);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].first, records[i - 1].first + 1);  // contiguous
  }
  EXPECT_GT(log.stats().segments_deleted, 0);

  // Truncating beyond the high-water mark never deletes the active segment;
  // the log stays writable and the next append still gets LSN 41.
  ASSERT_TRUE(log.TruncateBefore(1000).ok());
  const auto lsn = log.Append("after-truncate");
  ASSERT_TRUE(lsn.ok()) << lsn.status();
  EXPECT_EQ(lsn.value(), 41);
}

TEST_F(WalTest, TruncateNeverUnlinksAReclaimedLeftoverActiveSegment) {
  // Regression (found by scripts/wal_chaos.sh): a crash can leave a
  // header-only segment at exactly next_lsn. Open reclaims that path for
  // the new active segment, but the scan had already recorded it as sealed
  // with max_lsn = first_lsn - 1 — below every future floor. A later
  // TruncateBefore must not unlink the live active file through that stale
  // entry, or every subsequent append lands in an orphaned inode.
  const std::string dir = TempDir("wal_reclaimed_active");
  {
    auto opened = wal::Wal::Open(dir, NonePolicy(), nullptr);
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(opened.value()->Append("early-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(opened.value()->Flush().ok());
  }
  // An open/close with no appends leaves the header-only segment at lsn 4.
  { ASSERT_TRUE(wal::Wal::Open(dir, NonePolicy(), nullptr).ok()); }

  auto reopened = wal::Wal::Open(dir, NonePolicy(), nullptr);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  wal::Wal& log = *reopened.value();
  ASSERT_TRUE(log.Append("late-4").ok());
  ASSERT_TRUE(log.Append("late-5").ok());
  ASSERT_TRUE(log.TruncateBefore(4).ok());  // checkpoint covering lsns 1..3
  ASSERT_TRUE(log.Flush().ok());

  const auto records = Records(dir);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::pair<int64_t, std::string>{4, "late-4"}));
  EXPECT_EQ(records[1], (std::pair<int64_t, std::string>{5, "late-5"}));
}

TEST_F(WalTest, TornTailIsCutAndAppendResumes) {
  const std::string dir = TempDir("wal_torn_tail");
  {
    auto opened = wal::Wal::Open(dir, NonePolicy(), nullptr);
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(opened.value()->Append("whole-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(opened.value()->Flush().ok());
  }
  // Simulate a crash mid-write: half a frame head of garbage at the tail.
  std::string segment;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    segment = entry.path().string();
  }
  ASSERT_FALSE(segment.empty());
  {
    std::ofstream torn(segment, std::ios::binary | std::ios::app);
    torn.write("\x52\x57\x48\x53\x01\x00\x00", 7);
  }

  wal::OpenReport report;
  auto reopened = wal::Wal::Open(dir, NonePolicy(), &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE(report.tail_truncated);
  EXPECT_EQ(report.torn_bytes, 7);
  EXPECT_EQ(report.records, 3);
  EXPECT_EQ(report.next_lsn, 4);
  const auto lsn = reopened.value()->Append("resumed");
  ASSERT_TRUE(lsn.ok()) << lsn.status();
  EXPECT_EQ(lsn.value(), 4);
  ASSERT_TRUE(reopened.value()->Flush().ok());
  EXPECT_EQ(Records(dir).size(), 4u);
}

TEST_F(WalTest, PolicySpecRoundTripsAndRejectsGarbage) {
  for (const char* spec : {"always", "none", "bytes:65536", "interval:25"}) {
    const auto parsed = wal::ParsePolicySpec(spec);
    ASSERT_TRUE(parsed.ok()) << spec << ": " << parsed.status();
    EXPECT_EQ(wal::PolicySpecString(parsed.value()), spec);
  }
  EXPECT_EQ(wal::ParsePolicySpec("bytes:1M").value().bytes_threshold,
            1 << 20);
  for (const char* spec :
       {"", "sometimes", "bytes", "bytes:0", "bytes:-4", "interval:",
        "interval:zero", "always:5"}) {
    EXPECT_FALSE(wal::ParsePolicySpec(spec).ok()) << spec;
  }
}

TEST_F(WalTest, GovernorRefusalIsResourceExhausted) {
  const std::string dir = TempDir("wal_governor");
  governor::SetBudgetForTest(governor::Used() + 1024);
  const auto refused = wal::Wal::Open(dir, NonePolicy(), nullptr);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  governor::SetBudgetForTest(0);
  const auto admitted = wal::Wal::Open(dir, NonePolicy(), nullptr);
  EXPECT_TRUE(admitted.ok()) << admitted.status();
}

// ---------------------------------------------------------------------------
// Engine integration: recovery replays exactly the logged history.

class WalEngineTest : public WalTest {
 protected:
  QueryEngine::WalConfig Config(wal::SyncPolicy policy = wal::SyncPolicy::kNone,
                                int64_t checkpoint_ms = 0) {
    QueryEngine::WalConfig config;
    config.options.policy = policy;
    config.checkpoint_interval_ms = checkpoint_ms;
    return config;
  }

  // The observable state a recovered engine must reproduce bit-for-bit.
  std::string Fingerprint(QueryEngine& engine, const std::string& name) {
    const std::string count = engine.Execute("COUNT " + name).value();
    return engine.Execute("DESCRIBE " + name).value() + "\n" + count + "\n" +
           engine.Execute("SUM " + name + " 0 " + count).value();
  }
};

TEST_F(WalEngineTest, RecoveryReproducesStateIncludingDropRecreateChurn) {
  const std::string dir = TempDir("wal_engine_recover");
  std::string fingerprint;
  {
    QueryEngine engine;
    ASSERT_TRUE(engine.OpenWal(dir, Config()).ok());
    ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
    ASSERT_TRUE(engine.Execute("APPEND eth0 1 2 3 4 5").ok());
    ASSERT_TRUE(engine.Execute("CREATE lo 32 4").ok());
    ASSERT_TRUE(engine.Execute("APPEND lo 9").ok());
    ASSERT_TRUE(engine.Execute("DROP lo").ok());
    ASSERT_TRUE(engine.Execute("CREATE lo 16 4").ok());  // recreate, new shape
    ASSERT_TRUE(engine.Execute("APPEND lo 7 7").ok());
    fingerprint = Fingerprint(engine, "eth0");
    ASSERT_TRUE(engine.CloseWal().ok());
  }
  QueryEngine recovered;
  const auto recovery = recovered.OpenWal(dir, Config());
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_EQ(recovery.value().records_applied, 7);
  EXPECT_EQ(Fingerprint(recovered, "eth0"), fingerprint);
  EXPECT_EQ(recovered.Execute("COUNT lo").value(), "2");
  EXPECT_NE(recovered.Execute("DESCRIBE lo").value().find("window 2/16"),
            std::string::npos);
}

TEST_F(WalEngineTest, CheckpointTruncatesAndRecoveryReplaysOnlyTheSuffix) {
  const std::string dir = TempDir("wal_engine_checkpoint");
  std::string fingerprint;
  {
    QueryEngine engine;
    ASSERT_TRUE(engine.OpenWal(dir, Config()).ok());
    ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
    ASSERT_TRUE(engine.Execute("APPEND eth0 1 2 3").ok());
    const auto checkpointed = engine.Execute("WAL CHECKPOINT");
    ASSERT_TRUE(checkpointed.ok()) << checkpointed.status();
    EXPECT_NE(checkpointed.value().find("wal truncated below lsn"),
              std::string::npos);
    ASSERT_TRUE(engine.Execute("APPEND eth0 4 5").ok());  // post-checkpoint
    fingerprint = Fingerprint(engine, "eth0");
    ASSERT_TRUE(engine.CloseWal().ok());
  }
  QueryEngine recovered;
  const auto recovery = recovered.OpenWal(dir, Config());
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_TRUE(recovery.value().checkpoint_loaded);
  // Only the post-checkpoint append replays; the prefix came from SHCP.
  EXPECT_EQ(recovery.value().records_applied, 1);
  EXPECT_EQ(Fingerprint(recovered, "eth0"), fingerprint);
}

TEST_F(WalEngineTest, WalVerbReportsStatusAndRequiresAnOpenLog) {
  QueryEngine cold;
  const auto refused = cold.Execute("WAL");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  const std::string dir = TempDir("wal_engine_verb");
  QueryEngine engine;
  ASSERT_TRUE(engine.OpenWal(dir, Config(wal::SyncPolicy::kAlways)).ok());
  ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
  ASSERT_TRUE(engine.Execute("APPEND eth0 1").ok());

  const auto status_line = engine.Execute("WAL");
  ASSERT_TRUE(status_line.ok()) << status_line.status();
  EXPECT_NE(status_line.value().find("policy=always"), std::string::npos);
  EXPECT_NE(status_line.value().find("durable lsn=2"), std::string::npos);
  EXPECT_NE(status_line.value().find("last recovery:"), std::string::npos);

  const auto stats = engine.Execute("STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("wal: durable lsn=2"), std::string::npos);

  const std::string save_path = ::testing::TempDir() + "/wal_verb.shcp";
  const auto saved = engine.Execute("SAVE " + save_path);
  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_NE(saved.value().find("wal durable lsn=2"), std::string::npos);

  EXPECT_FALSE(engine.Execute("WAL BOGUS").ok());
}

TEST_F(WalEngineTest, LoadReanchorsTheWalToTheLoadedState) {
  // A LOAD replaces the engine's state wholesale; stale WAL records must
  // never replay over it on the next restart.
  const std::string checkpoint = ::testing::TempDir() + "/wal_foreign.shcp";
  {
    QueryEngine other;  // no WAL: a "foreign" checkpoint
    ASSERT_TRUE(other.Execute("CREATE wifi 32 4").ok());
    ASSERT_TRUE(other.Execute("APPEND wifi 10 20 30").ok());
    ASSERT_TRUE(other.Execute("SAVE " + checkpoint).ok());
  }
  const std::string dir = TempDir("wal_engine_load");
  {
    QueryEngine engine;
    ASSERT_TRUE(engine.OpenWal(dir, Config()).ok());
    ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
    ASSERT_TRUE(engine.Execute("APPEND eth0 1 2 3 4").ok());
    ASSERT_TRUE(engine.Execute("LOAD " + checkpoint).ok());
    EXPECT_FALSE(engine.Execute("COUNT eth0").ok());  // replaced wholesale
    ASSERT_TRUE(engine.Execute("APPEND wifi 40").ok());
    ASSERT_TRUE(engine.CloseWal().ok());
  }
  QueryEngine recovered;
  const auto recovery = recovered.OpenWal(dir, Config());
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_FALSE(recovered.Execute("COUNT eth0").ok());  // pre-LOAD history gone
  EXPECT_EQ(recovered.Execute("COUNT wifi").value(), "4");
}

TEST_F(WalTest, ReplayResumesAtEveryLsnIncludingSegmentBoundaries) {
  // Replication resumes a subscriber at an arbitrary LSN — most awkwardly
  // at exactly the first record of a segment, where the reader must skip
  // whole sealed files and land on a fresh header. Replay from EVERY
  // position and require a contiguous suffix each time.
  const std::string dir = TempDir("wal_replay_resume");
  wal::Options options = NonePolicy();
  options.segment_bytes = 128;  // several segments across 40 records
  auto opened = wal::Wal::Open(dir, options, nullptr);
  ASSERT_TRUE(opened.ok()) << opened.status();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(opened.value()->Append("payload-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(opened.value()->Flush().ok());
  ASSERT_GT(opened.value()->stats().segments_created, 2);

  for (int64_t from = 1; from <= 41; ++from) {
    int64_t expected = from;
    const Status replayed = opened.value()->Replay(
        from,
        [&](int64_t lsn, std::string_view payload) {
          EXPECT_EQ(lsn, expected) << "resume at " << from;
          EXPECT_EQ(payload, "payload-" + std::to_string(lsn - 1));
          ++expected;
          return Status::OK();
        },
        nullptr);
    ASSERT_TRUE(replayed.ok()) << "resume at " << from << ": " << replayed;
    EXPECT_EQ(expected, 41) << "resume at " << from;
  }
}

TEST_F(WalTest, ReadTailFollowsRotationsAndReportsTruncation) {
  const std::string dir = TempDir("wal_read_tail");
  wal::Options options;  // policy always: records are durable immediately
  options.segment_bytes = 128;
  auto opened = wal::Wal::Open(dir, options, nullptr);
  ASSERT_TRUE(opened.ok()) << opened.status();
  wal::Wal& log = *opened.value();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(log.Append("tail-" + std::to_string(i)).ok());
  }

  // Drain from LSN 1 in small bites: records arrive in order, contiguous,
  // across every rotation, and the cursor reports caught-up at the end.
  wal::TailCursor cursor;
  int64_t expected = 1;
  while (true) {
    wal::TailBatch batch;
    ASSERT_TRUE(log.ReadTail(&cursor, /*max_bytes=*/96, &batch).ok());
    EXPECT_FALSE(batch.truncated_below);
    if (batch.records.empty()) break;
    for (const auto& [lsn, payload] : batch.records) {
      EXPECT_EQ(lsn, expected);
      EXPECT_EQ(payload, "tail-" + std::to_string(lsn - 1));
      ++expected;
    }
  }
  EXPECT_EQ(expected, 31);

  // A cursor below the retained floor is told so (the hub's cue to send a
  // checkpoint-bootstrap instead of a record gap).
  ASSERT_TRUE(log.TruncateBefore(25).ok());
  wal::TailCursor stale;
  stale.next_lsn = 1;
  wal::TailBatch batch;
  ASSERT_TRUE(log.ReadTail(&stale, 1 << 20, &batch).ok());
  EXPECT_TRUE(batch.truncated_below);
}

TEST_F(WalTest, AppendAtAndAlignNextLsnKeepTheReplicaLogMonotonic) {
  const std::string dir = TempDir("wal_append_at");
  auto opened = wal::Wal::Open(dir, NonePolicy(), nullptr);
  ASSERT_TRUE(opened.ok()) << opened.status();
  wal::Wal& log = *opened.value();

  // The replica apply path: records arrive numbered by the primary, with
  // gaps legal (skipped corrupt records), but never behind next_lsn.
  ASSERT_TRUE(log.AppendAt(1, "one").ok());
  ASSERT_TRUE(log.AppendAt(3, "three").ok());  // gap: lsn 2 skipped upstream
  EXPECT_FALSE(log.AppendAt(2, "rewind").ok());
  EXPECT_EQ(log.next_lsn(), 4);

  // The bootstrap handoff: fast-forward past the image's floor.
  ASSERT_TRUE(log.AlignNextLsn(100).ok());
  EXPECT_FALSE(log.AlignNextLsn(50).ok());  // never backwards
  const auto lsn = log.Append("after-floor");
  ASSERT_TRUE(lsn.ok()) << lsn.status();
  EXPECT_EQ(lsn.value(), 100);
  ASSERT_TRUE(log.Flush().ok());

  const auto records = Records(dir, 1);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::pair<int64_t, std::string>{1, "one"}));
  EXPECT_EQ(records[1], (std::pair<int64_t, std::string>{3, "three"}));
  EXPECT_EQ(records[2], (std::pair<int64_t, std::string>{100, "after-floor"}));
}

TEST_F(WalEngineTest, RecoveryFromACheckpointWithAWipedLogReanchorsLsns) {
  // Operator scenario: the segments were lost (disk swap, overzealous
  // cleanup) but checkpoint.shcp survived. Recovery must serve the
  // checkpointed state AND re-anchor the fresh log past the checkpoint's
  // floor — otherwise new appends reuse covered LSNs and the per-stream
  // veto silently discards them on the NEXT recovery.
  const std::string dir = TempDir("wal_engine_wiped");
  int64_t floor_lsn = 0;
  {
    QueryEngine engine;
    ASSERT_TRUE(engine.OpenWal(dir, Config(wal::SyncPolicy::kAlways)).ok());
    ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
    ASSERT_TRUE(engine.Execute("APPEND eth0 1 2 3").ok());
    ASSERT_TRUE(engine.Execute("WAL CHECKPOINT").ok());
    floor_lsn = engine.WalDurableLsn();
    ASSERT_TRUE(engine.CloseWal().ok());
  }
  int64_t removed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".seg") {
      std::filesystem::remove(entry.path());
      ++removed;
    }
  }
  ASSERT_GT(removed, 0);

  {
    QueryEngine recovered;
    const auto recovery =
        recovered.OpenWal(dir, Config(wal::SyncPolicy::kAlways));
    ASSERT_TRUE(recovery.ok()) << recovery.status();
    EXPECT_TRUE(recovery.value().checkpoint_loaded);
    EXPECT_EQ(recovery.value().open.records, 0);
    EXPECT_EQ(recovered.Execute("COUNT eth0").value(), "3");
    ASSERT_TRUE(recovered.Execute("APPEND eth0 4 5").ok());
    EXPECT_GT(recovered.WalDurableLsn(), floor_lsn) << "LSNs were reused";
    ASSERT_TRUE(recovered.CloseWal().ok());
  }
  // The writes that landed after the wipe survive a second recovery —
  // the regression this test exists for.
  QueryEngine again;
  ASSERT_TRUE(again.OpenWal(dir, Config(wal::SyncPolicy::kAlways)).ok());
  EXPECT_EQ(again.Execute("COUNT eth0").value(), "5");
}

TEST_F(WalEngineTest, RecoveryWithAnAbsentDirIsAColdStart) {
  // The dir not existing yet is the day-one case, not an error: OpenWal
  // creates it, reports no checkpoint and no records, and logs normally.
  const std::string dir = TempDir("wal_engine_absent") + "-never-made";
  std::filesystem::remove_all(dir);
  QueryEngine engine;
  const auto recovery = engine.OpenWal(dir, Config(wal::SyncPolicy::kAlways));
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_FALSE(recovery.value().checkpoint_loaded);
  EXPECT_EQ(recovery.value().open.records, 0);
  EXPECT_EQ(recovery.value().records_applied, 0);
  ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
  ASSERT_TRUE(engine.Execute("APPEND eth0 1").ok());
  EXPECT_EQ(engine.WalDurableLsn(), 2);
}

TEST_F(WalEngineTest, BackgroundCheckpointerTruncatesWithoutLosingState) {
  const std::string dir = TempDir("wal_engine_bg_ckpt");
  std::string fingerprint;
  {
    QueryEngine engine;
    ASSERT_TRUE(
        engine.OpenWal(dir, Config(wal::SyncPolicy::kNone, /*ckpt_ms=*/5))
            .ok());
    ASSERT_TRUE(engine.Execute("CREATE eth0 64 8").ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(engine.Execute("APPEND eth0 " + std::to_string(i)).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    fingerprint = Fingerprint(engine, "eth0");
    ASSERT_TRUE(engine.CloseWal().ok());
  }
  QueryEngine recovered;
  const auto recovery = recovered.OpenWal(dir, Config());
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_TRUE(recovery.value().checkpoint_loaded);
  EXPECT_EQ(Fingerprint(recovered, "eth0"), fingerprint);
}

}  // namespace
}  // namespace streamhist
