#include "src/wavelet/synopsis.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

TEST(WaveletSynopsisTest, FullCoefficientBudgetIsExact) {
  Random rng(4);
  std::vector<double> data;
  for (int i = 0; i < 32; ++i) data.push_back(rng.UniformInt(-50, 50));
  const WaveletSynopsis s = WaveletSynopsis::Build(data, 32);
  for (int64_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(s.Estimate(i), data[static_cast<size_t>(i)], 1e-9);
  }
  EXPECT_NEAR(s.SseAgainst(data), 0.0, 1e-9);
}

TEST(WaveletSynopsisTest, ConstantSignalNeedsOneCoefficient) {
  const std::vector<double> data(64, 9.0);
  const WaveletSynopsis s = WaveletSynopsis::Build(data, 1);
  EXPECT_NEAR(s.SseAgainst(data), 0.0, 1e-9);
  EXPECT_NEAR(s.RangeSum(0, 64), 64 * 9.0, 1e-9);
}

TEST(WaveletSynopsisTest, RangeSumMatchesReconstruction) {
  Random rng(8);
  std::vector<double> data;
  for (int i = 0; i < 100; ++i) data.push_back(rng.UniformDouble(0, 20));
  const WaveletSynopsis s = WaveletSynopsis::Build(data, 10);
  const std::vector<double> approx = s.Reconstruct();
  for (int t = 0; t < 100; ++t) {
    const int64_t lo = rng.UniformInt(0, 99);
    const int64_t hi = rng.UniformInt(lo, 100);
    double expected = 0.0;
    for (int64_t i = lo; i < hi; ++i) expected += approx[static_cast<size_t>(i)];
    EXPECT_NEAR(s.RangeSum(lo, hi), expected, 1e-8);
  }
}

TEST(WaveletSynopsisTest, PointEstimateMatchesReconstruction) {
  Random rng(15);
  std::vector<double> data;
  for (int i = 0; i < 77; ++i) data.push_back(rng.Gaussian(10, 4));
  const WaveletSynopsis s = WaveletSynopsis::Build(data, 12);
  const std::vector<double> approx = s.Reconstruct();
  for (int64_t i = 0; i < 77; ++i) {
    EXPECT_NEAR(s.Estimate(i), approx[static_cast<size_t>(i)], 1e-9);
  }
}

TEST(WaveletSynopsisTest, SseNonIncreasingInBudget) {
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, 256, 5);
  double prev = 1e300;
  for (int64_t b : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const double sse = WaveletSynopsis::Build(data, b).SseAgainst(data);
    EXPECT_LE(sse, prev + 1e-6) << "B=" << b;
    prev = sse;
  }
}

TEST(WaveletSynopsisTest, L2ThresholdingIsOptimalForTheBasis) {
  // Keeping the top-B normalized coefficients minimizes SSE among all
  // B-subsets of Haar coefficients; in particular it beats keeping the
  // *smallest* B coefficients on any non-trivial signal.
  Random rng(21);
  std::vector<double> data;
  for (int i = 0; i < 64; ++i) data.push_back(rng.UniformInt(0, 100));
  const double top = WaveletSynopsis::Build(data, 8).SseAgainst(data);
  const double all = WaveletSynopsis::Build(data, 64).SseAgainst(data);
  EXPECT_LE(all, 1e-9);
  EXPECT_GT(top, all);  // lossy but...
  const double total_energy = [&] {
    double e = 0.0;
    for (double v : data) e += v * v;
    return e;
  }();
  EXPECT_LT(top, total_energy);  // ...far better than keeping nothing
}

TEST(WaveletSynopsisTest, NonPowerOfTwoDomainIsHandled) {
  const std::vector<double> data(100, 3.0);
  const WaveletSynopsis s = WaveletSynopsis::Build(data, 4);
  EXPECT_EQ(s.domain_size(), 100);
  // Mean padding keeps a constant signal exactly representable.
  EXPECT_NEAR(s.SseAgainst(data), 0.0, 1e-9);
  EXPECT_NEAR(s.RangeSum(0, 100), 300.0, 1e-9);
}

TEST(WaveletSynopsisTest, EmptyDomain) {
  const WaveletSynopsis s = WaveletSynopsis::Build(std::vector<double>{}, 4);
  EXPECT_EQ(s.domain_size(), 0);
  EXPECT_EQ(s.num_coefficients(), 0);
}

}  // namespace
}  // namespace streamhist
