// Thin entry point for the streamhist_tool CLI; all logic lives in
// src/tools/cli.{h,cc} so the test suite can drive it in-process.

#include <iostream>
#include <string>
#include <vector>

#include "src/tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return streamhist::RunCli(args, std::cout, std::cerr);
}
